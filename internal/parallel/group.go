package parallel

import (
	"sync"

	"treeclock/internal/trace"
)

// Group is the push-mode fan-out transport: the same worker goroutines,
// SPSC rings and refcounted shared batches Run uses to drain a source,
// exposed as an object a caller can feed incrementally. Run is a Group
// wrapped around a pull loop; a streaming session (a daemon feeding
// client batches as they arrive over a socket) is a Group driven
// directly.
//
// All producer-side methods — Feed, FeedShared, Barrier, Close — must
// be called from a single goroutine, matching the single-producer
// contract of the underlying rings. Workers run until Close.
type Group struct {
	rings []*spscRing
	wg    sync.WaitGroup
	n     int
	queue int
	batch int
	free  chan []trace.Event // lazy copy-mode buffer pool
	// events is the global trace position of the next event to be fed:
	// StartAt plus everything delivered so far. Producer-goroutine only.
	events uint64
	closed bool
}

// NewGroup starts one worker goroutine per replica and returns the
// group ready to be fed. Only the Queue, BatchSize and StartAt fields
// of opts apply; cancellation and checkpoint cadence are pull-loop
// concerns that push-mode callers express directly (stop feeding;
// call Barrier).
func NewGroup(replicas []Replica, opts Options) *Group {
	queue := opts.Queue
	if queue <= 0 {
		queue = 8
	}
	g := &Group{
		rings:  make([]*spscRing, len(replicas)),
		n:      len(replicas),
		queue:  queue,
		batch:  batchSize(opts),
		events: opts.StartAt,
	}
	for w := range replicas {
		g.rings[w] = newRing(queue)
		g.wg.Add(1)
		go g.worker(replicas[w], g.rings[w])
	}
	return g
}

// worker is one replica's consume loop: process data batches in ring
// order, park at barriers, exit when the ring closes.
func (g *Group) worker(rep Replica, ring *spscRing) {
	defer g.wg.Done()
	for {
		b, ok := ring.Pop()
		if !ok {
			return
		}
		if b.pause != nil {
			b.pause.Done()
			<-b.resume
			continue
		}
		rep.ProcessBatchAt(b.base, b.events)
		b.release()
	}
}

// Events returns the global trace position of the next event to be
// fed (StartAt plus all events delivered so far).
func (g *Group) Events() uint64 { return g.events }

// FeedShared fans evs out to every worker without copying: all workers
// read the same underlying slice, and the last one to finish hands the
// buffer to recycle. The caller must not touch evs again until recycle
// runs. Blocks while the slowest worker's ring is full.
func (g *Group) FeedShared(evs []trace.Event, recycle func([]trace.Event)) {
	b := &sharedBatch{events: evs, base: g.events, recycle: recycle}
	b.refs.Store(int32(g.n))
	for _, ring := range g.rings {
		ring.Push(b)
	}
	g.events += uint64(len(evs))
}

// Feed copies evs into pooled buffers (chunked to the batch size) and
// fans each chunk out to every worker. The caller keeps ownership of
// evs; use FeedShared to skip the copy when the buffer's lifetime can
// be handed over.
func (g *Group) Feed(evs []trace.Event) {
	for len(evs) > 0 {
		n := g.batch
		if n > len(evs) {
			n = len(evs)
		}
		buf := g.buffer()
		c := copy(buf[:n], evs[:n])
		g.FeedShared(buf[:c], g.recycleBuffer)
		evs = evs[n:]
	}
}

// buffer takes a decode/copy buffer from the pool, creating the pool
// on first use (the zero-copy paths never need one). Producer-only, so
// the lazy init is unsynchronized by contract.
func (g *Group) buffer() []trace.Event {
	if g.free == nil {
		// Sized past the rings' capacity so the producer only blocks
		// when the slowest worker is genuinely behind.
		g.free = make(chan []trace.Event, g.queue+2)
		for i := 0; i < cap(g.free); i++ {
			g.free <- make([]trace.Event, g.batch)
		}
	}
	return <-g.free
}

// recycleBuffer returns a pool buffer once the last worker releases it.
func (g *Group) recycleBuffer(evs []trace.Event) { g.free <- evs[:cap(evs)] }

// Barrier pauses every worker at the current trace position and runs
// fn (if non-nil) while they are parked, so fn may read all replica
// state without synchronization: the rings are FIFO, so by the time
// all workers have arrived each has processed every event fed so far
// and nothing else. Returns fn's error after releasing the workers.
func (g *Group) Barrier(fn func(events uint64) error) error {
	var arrived sync.WaitGroup
	arrived.Add(g.n)
	b := &sharedBatch{pause: &arrived, resume: make(chan struct{})}
	for _, ring := range g.rings {
		ring.Push(b)
	}
	arrived.Wait()
	var err error
	if fn != nil {
		err = fn(g.events)
	}
	close(b.resume)
	return err
}

// Close marks the stream complete and waits for every worker to drain
// its ring and exit. Idempotent; no Feed/FeedShared/Barrier may follow.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, ring := range g.rings {
		ring.Close()
	}
	g.wg.Wait()
}
