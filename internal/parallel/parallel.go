// Package parallel is the sharded analysis runtime: it fans a decoded
// event stream out to N workers, each running a full engine replica,
// so per-variable analysis work spreads across cores while the
// analysis result stays byte-identical to a sequential run.
//
// # Design
//
// Variables partition across workers by stable hash (ShardOf) because
// per-variable analysis state is independent across variables. Clock
// evolution is not: sync events (acquire/release/fork/join) and, for
// the stronger orders, even accesses (SHB's last-write joins, MAZ's
// read bookkeeping, WCP's release summaries) thread ordering
// information through the whole identifier space. Rather than
// serialize those through cross-worker communication — which would put
// a synchronization point on every sync event — every worker processes
// the complete event stream through its own engine replica. The
// coordinator sequences batches into each worker's queue in trace
// order, so every replica performs the identical, deterministic clock
// evolution the sequential engine performs, and the per-variable race
// checks a worker runs for its own shard see exactly the timestamps
// the sequential run would have used. What is sharded is the
// per-variable analysis state and checks (the FastTrack-style detector
// state for HB/SHB, the report gate for MAZ/WCP); what is replicated
// is the clock scaffolding. The speedup therefore comes from the
// analysis share of the per-event cost, which dominates on
// access-heavy workloads.
//
// # Transport
//
// Each worker consumes its own bounded SPSC ring (one producer: the
// coordinator; one consumer: the worker), so batch hand-off is two
// atomic loads and a store in the common case. Batches are shared,
// not copied: the coordinator wraps each decoded buffer in a
// refcounted sharedBatch, every worker reads the same underlying
// slice (replicas only read events, never mutate them), and the last
// worker to finish recycles the buffer — back to the coordinator's
// free pool, or to the upstream decoder when the source is a
// trace.BatchProducer (the pipelined decoder's zero-copy recycling
// discipline). The rings bound the in-flight batches, so memory stays
// O(workers × queue × batch) and a slow worker back-pressures the
// decoder instead of ballooning the queues.
package parallel

import (
	"context"
	"sync"
	"sync/atomic"

	"treeclock/internal/trace"
)

// Replica is one worker's analysis engine: a full engine runtime that
// processes every event of the trace (keeping its clock evolution
// identical to a sequential run) while the per-variable analysis is
// gated to the worker's shard by whoever constructed it.
// ProcessBatchAt is called with consecutive batches in trace order;
// base is the global trace position of events[0], so reported races
// can be merged back into trace order.
type Replica interface {
	ProcessBatchAt(base uint64, events []trace.Event)
}

// Options tunes the fan-out transport.
type Options struct {
	// Queue is the per-worker ring capacity in batches (default 8).
	Queue int
	// BatchSize is the decode batch capacity when the source does not
	// produce its own batches (default trace.DefaultBatchSize).
	BatchSize int
	// Ctx cancels the run: the coordinator stops dispatching at the
	// next batch boundary, the workers drain what was already queued,
	// and Run returns the delivered count with ctx.Err(). Nil means
	// never cancelled.
	Ctx context.Context
	// StartAt is the global trace position of the first event the
	// source will deliver — non-zero when resuming from a checkpoint,
	// so position stamps continue the interrupted run's numbering.
	StartAt uint64
	// CheckpointEvery is the checkpoint cadence in events (at batch
	// granularity); 0 disables checkpointing.
	CheckpointEvery uint64
	// Checkpoint is called at each checkpoint boundary with every
	// worker paused at exactly the same trace position (a barrier), so
	// it may read all replica state without synchronization. A non-nil
	// error aborts the run.
	Checkpoint func(events uint64) error
}

// sharedBatch is one decoded batch in flight to all workers. events is
// read-only while shared; refs counts the workers still processing it,
// and the last release recycles the underlying buffer.
//
// A sharedBatch with a non-nil pause field is a barrier, not data: the
// worker reports arrival on pause, blocks on resume, and processes no
// events. Because the rings are FIFO and the coordinator pushes the
// barrier after batch k into every ring, all workers stand at the same
// trace position while the coordinator holds the barrier — the quiesce
// point checkpoints are taken at.
type sharedBatch struct {
	events  []trace.Event
	base    uint64 // global trace position of events[0]
	refs    atomic.Int32
	recycle func([]trace.Event)
	pause   *sync.WaitGroup // barrier arrival; nil for data batches
	resume  chan struct{}   // closed by the coordinator to release the barrier
}

// release is called by each worker when done with the batch; the last
// one returns the buffer for reuse.
func (b *sharedBatch) release() {
	if b.refs.Add(-1) == 0 {
		b.recycle(b.events)
	}
}

// Run drains src through the replicas: every batch is delivered to
// every worker, in trace order, and Run returns once all workers have
// processed the final batch. The returned count is the number of
// events delivered; the error is the source's (decode or validation
// failure). On error the workers still finish the batches already
// delivered — callers should discard their results.
//
// Run is the pull-mode wrapper around Group: it decodes (or forwards)
// batches from src and feeds each into the group. Sync events need no
// special casing — sequencing whole batches in trace order through
// FIFO rings means every worker observes every event, sync or access,
// in exactly the trace's order. Between batches the loop honors
// cancellation and checkpoint boundaries (see Options); both act at
// batch granularity, so every worker's replica is at a well-defined
// trace position when either fires.
func Run(src trace.EventSource, replicas []Replica, opts Options) (uint64, error) {
	if len(replicas) == 0 {
		// Nothing consumes the events; drain for the count and error so
		// the degenerate call still honors the source contract.
		var events uint64
		buf := make([]trace.Event, batchSize(opts))
		for {
			c, ok := trace.ReadBatch(src, buf)
			events += uint64(c)
			if !ok {
				return events, src.Err()
			}
		}
	}
	g := NewGroup(replicas, opts)
	defer g.Close()

	nextCkpt := opts.CheckpointEvery
	for nextCkpt > 0 && nextCkpt <= g.Events() {
		nextCkpt += opts.CheckpointEvery
	}
	cancelled := func() bool {
		if opts.Ctx == nil {
			return false
		}
		select {
		case <-opts.Ctx.Done():
			return true
		default:
			return false
		}
	}
	// checkpoint takes a group barrier when the cadence is due and runs
	// the checkpoint callback with every worker quiesced.
	checkpoint := func() error {
		if opts.CheckpointEvery == 0 || g.Events() < nextCkpt {
			return nil
		}
		err := g.Barrier(opts.Checkpoint)
		for nextCkpt <= g.Events() {
			nextCkpt += opts.CheckpointEvery
		}
		return err
	}

	if p, ok := src.(trace.BatchProducer); ok {
		// The upstream decoder owns the buffers; the last worker hands
		// each one straight back to its ring.
		for {
			if cancelled() {
				return g.Events(), opts.Ctx.Err()
			}
			evs, ok := p.AcquireBatch()
			if !ok {
				return g.Events(), p.Err()
			}
			g.FeedShared(evs, p.ReleaseBatch)
			if err := checkpoint(); err != nil {
				return g.Events(), err
			}
		}
	}

	// Plain source: decode into the group's free pool of reusable
	// buffers and hand each filled buffer over zero-copy.
	for {
		if cancelled() {
			return g.Events(), opts.Ctx.Err()
		}
		buf := g.buffer()
		c, ok := trace.ReadBatch(src, buf)
		if c > 0 {
			g.FeedShared(buf[:c], g.recycleBuffer)
		} else {
			g.recycleBuffer(buf)
		}
		if !ok {
			return g.Events(), src.Err()
		}
		if err := checkpoint(); err != nil {
			return g.Events(), err
		}
	}
}

// batchSize resolves the decode batch capacity.
func batchSize(opts Options) int {
	if opts.BatchSize > 0 {
		return opts.BatchSize
	}
	return trace.DefaultBatchSize
}
