package parallel

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// TestShardOfStable pins the shard assignment: it is a pure function
// of (x, n), covers every shard on a dense id range, and the Owns
// predicates of all workers partition the space (each variable owned
// by exactly one).
func TestShardOfStable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		hit := make([]int, n)
		owns := make([]func(int32) bool, n)
		for w := 0; w < n; w++ {
			owns[w] = Owns(w, n)
		}
		for x := int32(0); x < 4096; x++ {
			s := ShardOf(x, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", x, n, s)
			}
			if s != ShardOf(x, n) {
				t.Fatalf("ShardOf(%d, %d) not stable", x, n)
			}
			hit[s]++
			owners := 0
			for w := 0; w < n; w++ {
				if owns[w](x) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("variable %d owned by %d of %d workers", x, owners, n)
			}
		}
		for s, c := range hit {
			if c == 0 {
				t.Errorf("n=%d: shard %d never hit on a dense 4096-id range", n, s)
			}
		}
	}
	// Stability across calls is part of the contract the merge relies
	// on; pin a few literal values so an accidental hash change shows
	// up as a test diff, not as silently re-partitioned state.
	if ShardOf(0, 4) != ShardOf(0, 4) || ShardOf(1, 1) != 0 {
		t.Fatal("ShardOf not deterministic")
	}
}

// TestRingOrdered pushes sequenced batches through a small ring from a
// producer goroutine and checks the consumer sees every batch exactly
// once, in order, for several capacities (including 1, which forces
// maximal doorbell traffic).
func TestRingOrdered(t *testing.T) {
	for _, capacity := range []int{1, 2, 8} {
		r := newRing(capacity)
		const total = 10000
		go func() {
			for i := 0; i < total; i++ {
				r.Push(&sharedBatch{base: uint64(i)})
			}
			r.Close()
		}()
		for i := 0; i < total; i++ {
			b, ok := r.Pop()
			if !ok {
				t.Fatalf("cap %d: ring closed after %d of %d batches", capacity, i, total)
			}
			if b.base != uint64(i) {
				t.Fatalf("cap %d: batch %d arrived at position %d", capacity, b.base, i)
			}
		}
		if _, ok := r.Pop(); ok {
			t.Fatalf("cap %d: Pop succeeded past Close", capacity)
		}
	}
}

// TestRingCloseWakesConsumer pins that a consumer blocked on an empty
// ring observes Close.
func TestRingCloseWakesConsumer(t *testing.T) {
	r := newRing(4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := r.Pop(); ok {
			t.Error("Pop returned a batch from an empty closed ring")
		}
	}()
	r.Close()
	<-done
}

// recordingReplica captures the (base, len) sequence it was fed and a
// checksum of the events, to prove every worker saw the identical
// stream in the identical order.
type recordingReplica struct {
	bases []uint64
	lens  []int
	sum   uint64
}

func (r *recordingReplica) ProcessBatchAt(base uint64, events []trace.Event) {
	r.bases = append(r.bases, base)
	r.lens = append(r.lens, len(events))
	for _, ev := range events {
		r.sum = r.sum*1000003 + uint64(ev.T)*31 + uint64(ev.Obj)*7 + uint64(ev.Kind)
	}
}

// testTrace builds a deterministic access-only trace (reads/writes are
// always well-formed, so no lock bookkeeping is needed here).
func testTrace(events int) *trace.Trace {
	rng := rand.New(rand.NewSource(42))
	tr := &trace.Trace{Meta: trace.Meta{Name: "fanout", Threads: 8, Locks: 4, Vars: 64}}
	for i := 0; i < events; i++ {
		tr.Events = append(tr.Events, trace.Event{
			T:    vt.TID(rng.Intn(8)),
			Obj:  int32(rng.Intn(64)),
			Kind: trace.Kind(rng.Intn(2)),
		})
	}
	return tr
}

// TestRunFansOutIdentically drives Run over a replayed trace for
// several worker counts: every worker must see the whole stream, in
// order, with contiguous base positions.
func TestRunFansOutIdentically(t *testing.T) {
	tr := testTrace(20000)
	for _, n := range []int{1, 2, 4, 7} {
		replicas := make([]Replica, n)
		recs := make([]*recordingReplica, n)
		for w := range replicas {
			recs[w] = &recordingReplica{}
			replicas[w] = recs[w]
		}
		events, err := Run(trace.NewReplayer(tr), replicas, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if events != uint64(tr.Len()) {
			t.Fatalf("n=%d: delivered %d events, want %d", n, events, tr.Len())
		}
		for w, rec := range recs {
			var pos uint64
			for i, base := range rec.bases {
				if base != pos {
					t.Fatalf("n=%d worker %d: batch %d at base %d, want %d", n, w, i, base, pos)
				}
				pos += uint64(rec.lens[i])
			}
			if pos != uint64(tr.Len()) {
				t.Fatalf("n=%d worker %d: saw %d events, want %d", n, w, pos, tr.Len())
			}
			if rec.sum != recs[0].sum {
				t.Fatalf("n=%d: worker %d event checksum diverges from worker 0", n, w)
			}
		}
	}
}

// countingSource wraps a Replayer and counts how many distinct buffers
// are ever handed out via the coordinator's recycle discipline, by
// observing the ReadBatch calls.
type countingSource struct {
	*trace.Replayer
	calls int
}

func (c *countingSource) NextBatch(buf []trace.Event) (int, bool) {
	c.calls++
	return c.Replayer.NextBatch(buf)
}

// TestRunRecyclesBuffers checks the refcount discipline: the
// coordinator's free pool is bounded, so a long trace must be carried
// by a small fixed set of buffers. If a release were dropped the
// coordinator would deadlock waiting on the pool; if a batch were
// recycled early, the checksum comparison in the fan-out test would
// diverge under -race.
func TestRunRecyclesBuffers(t *testing.T) {
	src := &countingSource{Replayer: trace.NewReplayer(testTrace(50000))}
	recs := []*recordingReplica{{}, {}, {}}
	replicas := []Replica{recs[0], recs[1], recs[2]}
	events, err := Run(src, replicas, Options{Queue: 2, BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if events != 50000 {
		t.Fatalf("delivered %d events, want 50000", events)
	}
	if src.calls < 50000/128 {
		t.Fatalf("batched source consulted only %d times", src.calls)
	}
	for w := 1; w < len(recs); w++ {
		if recs[w].sum != recs[0].sum {
			t.Fatalf("worker %d checksum diverges (buffer recycled while in use?)", w)
		}
	}
}

// TestRunProducerPath runs the fan-out over a pipelined decoder — the
// trace.BatchProducer zero-copy path — and checks the buffers flow
// back to the pipeline's ring (the run completes) with identical
// delivery.
func TestRunProducerPath(t *testing.T) {
	tr := testTrace(30000)
	p := trace.NewPipeline(trace.NewReplayer(tr), 3, 256)
	defer p.Close()
	recs := []*recordingReplica{{}, {}}
	events, err := Run(p, []Replica{recs[0], recs[1]}, Options{Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	if events != uint64(tr.Len()) {
		t.Fatalf("delivered %d events, want %d", events, tr.Len())
	}
	if recs[0].sum != recs[1].sum {
		t.Fatal("workers diverge on the producer path")
	}
	// Same trace through the plain path must checksum identically:
	// the producer path may not reorder or drop batches.
	ref := &recordingReplica{}
	if _, err := Run(trace.NewReplayer(tr), []Replica{ref}, Options{}); err != nil {
		t.Fatal(err)
	}
	if ref.sum != recs[0].sum {
		t.Fatal("producer path delivers a different event stream than the plain path")
	}
}

// erroringSource fails after a prefix, exercising the error path.
type erroringSource struct {
	left int
	err  error
}

func (s *erroringSource) Next() (trace.Event, bool) {
	if s.left == 0 {
		return trace.Event{}, false
	}
	s.left--
	return trace.Event{T: 0, Obj: 1, Kind: trace.Read}, true
}
func (s *erroringSource) Err() error { return s.err }

// TestRunPropagatesSourceError checks a decode failure surfaces as
// Run's error while the workers still drain cleanly (no hang).
func TestRunPropagatesSourceError(t *testing.T) {
	wantErr := errSentinel{}
	rec := &recordingReplica{}
	events, err := Run(&erroringSource{left: 700, err: wantErr}, []Replica{rec}, Options{BatchSize: 64})
	if err != wantErr {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if events != 700 {
		t.Fatalf("delivered %d events before the failure, want 700", events)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "decode failed" }

// TestRunNoReplicas pins the degenerate drain: the source is consumed
// for its count and error even with nothing to analyze.
func TestRunNoReplicas(t *testing.T) {
	events, err := Run(trace.NewReplayer(testTrace(1000)), nil, Options{})
	if err != nil || events != 1000 {
		t.Fatalf("Run(nil replicas) = %d, %v; want 1000, nil", events, err)
	}
}

// TestRingStress hammers one ring from concurrent producer/consumer
// with random stalls; run with -race this is the memory-model check of
// the doorbell protocol.
func TestRingStress(t *testing.T) {
	r := newRing(4)
	const total = 50000
	var got atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			b, ok := r.Pop()
			if !ok || b.base != uint64(i) {
				t.Errorf("pop %d: got %v ok=%v", i, b, ok)
				return
			}
			got.Add(1)
		}
		if _, ok := r.Pop(); ok {
			t.Error("Pop past Close")
		}
	}()
	for i := 0; i < total; i++ {
		r.Push(&sharedBatch{base: uint64(i)})
	}
	r.Close()
	wg.Wait()
	if got.Load() != total {
		t.Fatalf("consumed %d of %d", got.Load(), total)
	}
}
