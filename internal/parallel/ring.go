package parallel

import "sync/atomic"

// spscRing is a bounded single-producer/single-consumer queue of batch
// references: the coordinator pushes, exactly one worker pops. Head and
// tail are monotonically increasing sequence numbers (slot = seq mod
// capacity); only the producer writes tail and only the consumer writes
// head, so the fast path is two atomic loads, one atomic store and no
// locks. Blocking uses one-token doorbell channels: a waiter re-checks
// the indices in a loop after every wake, so a stale token can never
// fake an item and a missed token can never strand one (every push
// signals items, every pop signals space, and a token posted before the
// waiter sleeps is still there when it arrives).
type spscRing struct {
	buf    []*sharedBatch
	head   atomic.Uint64 // next sequence to pop; written by the consumer only
	tail   atomic.Uint64 // next sequence to push; written by the producer only
	closed atomic.Bool
	items  chan struct{} // doorbell: producer -> consumer
	space  chan struct{} // doorbell: consumer -> producer
}

// newRing returns a ring holding up to capacity batches; capacity < 1
// is raised to 1.
func newRing(capacity int) *spscRing {
	if capacity < 1 {
		capacity = 1
	}
	return &spscRing{
		buf:   make([]*sharedBatch, capacity),
		items: make(chan struct{}, 1),
		space: make(chan struct{}, 1),
	}
}

// signal posts a token on a doorbell unless one is already pending.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// Push enqueues b, blocking while the ring is full. It must only be
// called by the single producer, and never after Close.
func (r *spscRing) Push(b *sharedBatch) {
	for {
		t := r.tail.Load()
		if t-r.head.Load() < uint64(len(r.buf)) {
			r.buf[t%uint64(len(r.buf))] = b
			r.tail.Store(t + 1)
			signal(r.items)
			return
		}
		<-r.space
	}
}

// Pop dequeues the next batch in push order, blocking while the ring
// is empty. ok is false once the ring is closed and drained. It must
// only be called by the single consumer.
func (r *spscRing) Pop() (b *sharedBatch, ok bool) {
	for {
		h := r.head.Load()
		if h < r.tail.Load() {
			slot := h % uint64(len(r.buf))
			b = r.buf[slot]
			r.buf[slot] = nil
			r.head.Store(h + 1)
			signal(r.space)
			return b, true
		}
		if r.closed.Load() && h == r.tail.Load() {
			return nil, false
		}
		<-r.items
	}
}

// Close marks the ring exhausted: once drained, Pop reports ok ==
// false. Only the producer may close, and only after its last Push.
func (r *spscRing) Close() {
	r.closed.Store(true)
	signal(r.items)
}
