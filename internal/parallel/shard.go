package parallel

// Variable sharding
//
// Per-variable analysis state — access histories, read vectors, race
// checks — is independent across variables (an epoch check for x never
// reads the state of y), so it partitions cleanly: each worker owns the
// variables its shard predicate accepts and ignores the rest. The
// assignment must be a pure function of the variable id so every
// worker, every run and every platform agrees on it, and it should
// spread dense id ranges (generators and real traces both number
// variables contiguously) instead of clustering them on one worker the
// way a plain range split would.

// ShardOf maps variable x to one of n shards by a stable
// multiplicative hash (the murmur3 fmix32 finalizer), so consecutive
// variable ids scatter across all shards. n must be positive.
func ShardOf(x int32, n int) int {
	h := uint32(x)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return int(h % uint32(n))
}

// Owns returns the shard predicate of worker w out of n: it accepts
// exactly the variables ShardOf assigns to w.
func Owns(w, n int) func(x int32) bool {
	return func(x int32) bool { return ShardOf(x, n) == w }
}
