package ckpt

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b bytes.Buffer
	e := NewEnc(&b)
	e.Header()
	e.Begin("alpha")
	e.U8(7)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.Uvarint(300)
	e.Svarint(-5)
	e.Int(-123456)
	e.Int32(-2)
	e.Bool(true)
	e.Bool(false)
	e.Bytes([]byte{1, 2, 3})
	e.String("héllo")
	e.End()
	e.Begin("beta")
	e.End()
	if err := e.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}

	d := NewDec(bytes.NewReader(b.Bytes()))
	d.Header()
	d.Begin("alpha")
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %x", got)
	}
	if got := d.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Svarint(); got != -5 {
		t.Errorf("Svarint = %d", got)
	}
	if got := d.Int(); got != -123456 {
		t.Errorf("Int = %d", got)
	}
	if got := d.Int32(); got != -2 {
		t.Errorf("Int32 = %d", got)
	}
	if got := d.Bool(); !got {
		t.Errorf("Bool = %v", got)
	}
	if got := d.Bool(); got {
		t.Errorf("Bool = %v", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.String(); got != "héllo" {
		t.Errorf("String = %q", got)
	}
	d.End()
	d.Begin("beta")
	d.End()
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// checkpointBytes builds a small valid stream for corruption tests.
func checkpointBytes() []byte {
	var b bytes.Buffer
	e := NewEnc(&b)
	e.Header()
	e.Begin("s")
	e.U64(42)
	e.String("payload")
	e.End()
	if err := e.Err(); err != nil {
		panic(err)
	}
	return b.Bytes()
}

func decodeAll(data []byte) error {
	d := NewDec(bytes.NewReader(data))
	d.Header()
	d.Begin("s")
	d.U64()
	_ = d.String()
	d.End()
	return d.Err()
}

func TestTruncationRejected(t *testing.T) {
	data := checkpointBytes()
	if err := decodeAll(data); err != nil {
		t.Fatalf("pristine stream: %v", err)
	}
	for n := 0; n < len(data); n++ {
		err := decodeAll(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: error %v does not wrap ErrCorrupt", n, err)
		}
	}
}

func TestBitFlipsRejected(t *testing.T) {
	data := checkpointBytes()
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			err := decodeAll(mut)
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d not detected", i, bit)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip at byte %d bit %d: error %v does not wrap ErrCorrupt", i, bit, err)
			}
		}
	}
}

func TestWrongSectionName(t *testing.T) {
	data := checkpointBytes()
	d := NewDec(bytes.NewReader(data))
	d.Header()
	d.Begin("other")
	err := d.Err()
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong section name: err = %v", err)
	}
	if !strings.Contains(err.Error(), `"s"`) || !strings.Contains(err.Error(), `"other"`) {
		t.Fatalf("error %v does not name both sections", err)
	}
}

func TestLeftoverPayloadRejected(t *testing.T) {
	data := checkpointBytes()
	d := NewDec(bytes.NewReader(data))
	d.Header()
	d.Begin("s")
	d.U64() // leave the string unread
	d.End()
	if err := d.Err(); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("leftover payload: err = %v", err)
	}
}

func TestStickyErrors(t *testing.T) {
	d := NewDec(bytes.NewReader(nil))
	d.Header()
	first := d.Err()
	if first == nil {
		t.Fatal("empty stream accepted")
	}
	d.Begin("s")
	d.U64()
	d.End()
	if err := d.Err(); err != first {
		t.Fatalf("error not sticky: %v then %v", first, err)
	}
}

func TestCountBounds(t *testing.T) {
	var b bytes.Buffer
	e := NewEnc(&b)
	e.Header()
	e.Begin("s")
	e.Uvarint(1 << 40) // an absurd count with no payload behind it
	e.End()
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}

	d := NewDec(bytes.NewReader(b.Bytes()))
	d.Header()
	d.Begin("s")
	if n := d.Len(8); n != 0 || d.Err() == nil {
		t.Fatalf("Len accepted oversized count: n=%d err=%v", n, d.Err())
	}

	d = NewDec(bytes.NewReader(b.Bytes()))
	d.Header()
	d.Begin("s")
	if n := d.Count(); n != 0 || d.Err() == nil {
		t.Fatalf("Count accepted oversized count: n=%d err=%v", n, d.Err())
	}

	d = NewDec(bytes.NewReader(b.Bytes()))
	d.Header()
	d.Begin("s")
	if c := d.Cap(4); c != 0 || d.Err() == nil {
		t.Fatalf("Cap accepted oversized capacity: c=%d err=%v", c, d.Err())
	}
}

func TestCapBelowLenRejected(t *testing.T) {
	var b bytes.Buffer
	e := NewEnc(&b)
	e.Header()
	e.Begin("s")
	e.Uvarint(3)
	e.End()
	d := NewDec(bytes.NewReader(b.Bytes()))
	d.Header()
	d.Begin("s")
	if c := d.Cap(5); c != 0 || !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("Cap below len accepted: c=%d err=%v", c, d.Err())
	}
}

// FuzzDec drives the decoder over arbitrary bytes: it must always
// return (errors wrapping ErrCorrupt for malformed input), never
// panic, and behave deterministically.
func FuzzDec(f *testing.F) {
	f.Add(checkpointBytes())
	f.Add([]byte("TCKP\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		err1 := decodeAll(data)
		err2 := decodeAll(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic: %v vs %v", err1, err2)
		}
		if err1 != nil && err2 != nil && err1.Error() != err2.Error() {
			t.Fatalf("nondeterministic error text: %q vs %q", err1, err2)
		}
		if err1 != nil && !errors.Is(err1, ErrCorrupt) {
			t.Fatalf("error %v does not wrap ErrCorrupt", err1)
		}
	})
}
