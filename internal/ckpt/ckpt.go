// Package ckpt implements the wire format shared by every checkpoint
// producer and consumer in this repository: a versioned preamble
// followed by named, length-prefixed, CRC-checked sections.
//
// The unit of framing is the section. A section is
//
//	uvarint(len(name)) name uvarint(len(payload)) payload crc32(name+payload)
//
// with the CRC stored as a fixed little-endian uint32 (IEEE
// polynomial). Sections are self-delimiting, so independent Enc/Dec
// instances over the same stream compose: the engine runtime, each
// semantics plugin and each trace source writes its own sections with
// its own encoder, and a reader consumes them in the same order with
// any number of decoders. Nothing is buffered across sections.
//
// Decoding is defensive end to end: every failure — short reads, CRC
// mismatches, section-name mismatches, leftover payload bytes,
// out-of-range counts — surfaces as an error wrapping ErrCorrupt,
// never a panic, and payloads are read incrementally so a corrupt
// length cannot trigger a huge allocation. Both Enc and Dec are
// sticky: after the first error every later call is a no-op, so call
// sites check Err once per section.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorrupt is the sentinel wrapped by every decode failure: a
// truncated stream, a CRC mismatch, an unexpected section, or any
// out-of-range value. Callers distinguish "the checkpoint is bad"
// from plain I/O trouble with errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("corrupt checkpoint")

// Version is the current checkpoint format version, written by
// Enc.Header and required by Dec.Header. Any change to what a section
// contains is a format change and must bump it.
const Version = 2

const magic = "TCKP"

// maxSliceCap bounds every count, length and capacity Dec hands out.
// It is far above anything a real checkpoint contains (identifier
// spaces, not trace length) while keeping a corrupt value from
// forcing a multi-gigabyte allocation before the CRC is even checked.
const maxSliceCap = 1 << 26

// maxNameLen bounds section names.
const maxNameLen = 1 << 8

// Enc writes checkpoint sections to an io.Writer. Primitives append
// to the open section's payload; End frames and flushes it. Enc is
// sticky: the first write error latches and everything after is a
// no-op.
type Enc struct {
	w    io.Writer
	name string
	open bool
	buf  []byte
	err  error
}

// NewEnc returns an encoder over w.
func NewEnc(w io.Writer) *Enc { return &Enc{w: w} }

// Err returns the first error encountered.
func (e *Enc) Err() error { return e.err }

func (e *Enc) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Header writes the checkpoint preamble: magic plus format version.
func (e *Enc) Header() {
	if e.err != nil {
		return
	}
	var h [len(magic) + 1]byte
	copy(h[:], magic)
	h[len(magic)] = Version
	if _, err := e.w.Write(h[:]); err != nil {
		e.fail(fmt.Errorf("ckpt: writing header: %w", err))
	}
}

// Begin opens a section. Sections do not nest.
func (e *Enc) Begin(name string) {
	if e.err != nil {
		return
	}
	if e.open {
		e.fail(fmt.Errorf("ckpt: Begin(%q) inside open section %q", name, e.name))
		return
	}
	e.name, e.open, e.buf = name, true, e.buf[:0]
}

// End frames the open section and writes it out.
func (e *Enc) End() {
	if e.err != nil {
		return
	}
	if !e.open {
		e.fail(errors.New("ckpt: End outside a section"))
		return
	}
	e.open = false
	var hdr [binary.MaxVarintLen64]byte
	frame := make([]byte, 0, 2*binary.MaxVarintLen64+len(e.name)+len(e.buf)+4)
	n := binary.PutUvarint(hdr[:], uint64(len(e.name)))
	frame = append(frame, hdr[:n]...)
	frame = append(frame, e.name...)
	n = binary.PutUvarint(hdr[:], uint64(len(e.buf)))
	frame = append(frame, hdr[:n]...)
	frame = append(frame, e.buf...)
	crc := crc32.ChecksumIEEE([]byte(e.name))
	crc = crc32.Update(crc, crc32.IEEETable, e.buf)
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], crc)
	frame = append(frame, c[:]...)
	if _, err := e.w.Write(frame); err != nil {
		e.fail(fmt.Errorf("ckpt: writing section %q: %w", e.name, err))
	}
}

func (e *Enc) append(b ...byte) {
	if e.err != nil {
		return
	}
	if !e.open {
		e.fail(errors.New("ckpt: write outside a section"))
		return
	}
	e.buf = append(e.buf, b...)
}

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.append(v) }

// U32 appends a fixed-width little-endian uint32.
func (e *Enc) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.append(b[:]...)
}

// U64 appends a fixed-width little-endian uint64.
func (e *Enc) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.append(b[:]...)
}

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	e.append(b[:n]...)
}

// Svarint appends a zig-zag signed varint.
func (e *Enc) Svarint(v int64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], v)
	e.append(b[:n]...)
}

// Int appends a signed integer (zig-zag varint).
func (e *Enc) Int(v int) { e.Svarint(int64(v)) }

// Int32 appends a signed 32-bit integer (zig-zag varint).
func (e *Enc) Int32(v int32) { e.Svarint(int64(v)) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.append(1)
	} else {
		e.append(0)
	}
}

// Bytes appends a length-prefixed byte string.
func (e *Enc) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.append(b...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.append([]byte(s)...)
}

// Dec reads checkpoint sections from an io.Reader, mirroring Enc.
// Begin reads, CRC-checks and buffers one whole section; primitives
// then decode from the buffered payload and End requires it to be
// fully consumed. Dec is sticky like Enc.
type Dec struct {
	r    io.Reader
	name string
	open bool
	buf  []byte
	pos  int
	err  error
}

// NewDec returns a decoder over r.
func NewDec(r io.Reader) *Dec { return &Dec{r: r} }

// Err returns the first error encountered.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// corrupt latches a decoding failure wrapping ErrCorrupt.
func (d *Dec) corrupt(format string, args ...any) {
	args = append(args, ErrCorrupt)
	d.fail(fmt.Errorf("ckpt: "+format+": %w", args...))
}

// Corruptf lets callers latch a semantic validation failure — a
// CRC-valid payload that is nonetheless inconsistent (a dangling
// arena reference, mismatched lengths) — as a corruption error, so
// every rejection path reports through the one ErrCorrupt sentinel.
func (d *Dec) Corruptf(format string, args ...any) {
	d.corrupt(format, args...)
}

// Header reads and verifies the checkpoint preamble.
func (d *Dec) Header() {
	if d.err != nil {
		return
	}
	var h [len(magic) + 1]byte
	if _, err := io.ReadFull(d.r, h[:]); err != nil {
		d.corrupt("reading header: %v", err)
		return
	}
	if string(h[:len(magic)]) != magic {
		d.corrupt("bad magic %q (want %q)", h[:len(magic)], magic)
		return
	}
	if h[len(magic)] != Version {
		d.corrupt("unsupported format version %d (have %d)", h[len(magic)], Version)
	}
}

// rawUvarint decodes a varint straight from the underlying reader
// (section headers live outside any payload).
func (d *Dec) rawUvarint() uint64 {
	var v uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		var b [1]byte
		if _, err := io.ReadFull(d.r, b[:]); err != nil {
			d.corrupt("reading section header: %v", err)
			return 0
		}
		v |= uint64(b[0]&0x7f) << shift
		if b[0] < 0x80 {
			return v
		}
		shift += 7
	}
	d.corrupt("section header varint overflows 64 bits")
	return 0
}

// readPayload reads n payload bytes incrementally so a corrupt length
// fails on the short read rather than on a giant allocation.
func (d *Dec) readPayload(n uint64) []byte {
	const chunk = 1 << 20
	buf := d.buf[:0]
	for n > 0 {
		c := n
		if c > chunk {
			c = chunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(d.r, buf[off:]); err != nil {
			d.corrupt("reading section %q payload: %v", d.name, err)
			return nil
		}
		n -= c
	}
	return buf
}

// Begin reads the next section, verifies its CRC and requires its
// name to be exactly name.
func (d *Dec) Begin(name string) {
	if d.err != nil {
		return
	}
	if d.open {
		d.fail(fmt.Errorf("ckpt: Begin(%q) inside open section %q", name, d.name))
		return
	}
	nameLen := d.rawUvarint()
	if d.err != nil {
		return
	}
	if nameLen > maxNameLen {
		d.corrupt("section name length %d too large", nameLen)
		return
	}
	nb := make([]byte, nameLen)
	if _, err := io.ReadFull(d.r, nb); err != nil {
		d.corrupt("reading section name: %v", err)
		return
	}
	d.name = string(nb)
	payLen := d.rawUvarint()
	if d.err != nil {
		return
	}
	d.buf = d.readPayload(payLen)
	if d.err != nil {
		return
	}
	var c [4]byte
	if _, err := io.ReadFull(d.r, c[:]); err != nil {
		d.corrupt("reading section %q checksum: %v", d.name, err)
		return
	}
	crc := crc32.ChecksumIEEE(nb)
	crc = crc32.Update(crc, crc32.IEEETable, d.buf)
	if got := binary.LittleEndian.Uint32(c[:]); got != crc {
		d.corrupt("section %q checksum mismatch (stored %08x, computed %08x)", d.name, got, crc)
		return
	}
	if d.name != name {
		d.corrupt("unexpected section %q (want %q)", d.name, name)
		return
	}
	d.open, d.pos = true, 0
}

// End closes the current section, requiring its payload to be fully
// consumed.
func (d *Dec) End() {
	if d.err != nil {
		return
	}
	if !d.open {
		d.fail(errors.New("ckpt: End outside a section"))
		return
	}
	d.open = false
	if d.pos != len(d.buf) {
		d.corrupt("section %q has %d leftover bytes", d.name, len(d.buf)-d.pos)
	}
}

// remaining returns the unread payload bytes of the open section.
func (d *Dec) remaining() int { return len(d.buf) - d.pos }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if !d.open {
		d.fail(errors.New("ckpt: read outside a section"))
		return nil
	}
	if d.remaining() < n {
		d.corrupt("section %q truncated (%d bytes left, need %d)", d.name, d.remaining(), n)
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a fixed-width little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	if !d.open {
		d.fail(errors.New("ckpt: read outside a section"))
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.corrupt("section %q: bad varint", d.name)
		return 0
	}
	d.pos += n
	return v
}

// Svarint reads a zig-zag signed varint.
func (d *Dec) Svarint() int64 {
	if d.err != nil {
		return 0
	}
	if !d.open {
		d.fail(errors.New("ckpt: read outside a section"))
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.corrupt("section %q: bad varint", d.name)
		return 0
	}
	d.pos += n
	return v
}

// Int reads a signed integer and range-checks it into int.
func (d *Dec) Int() int {
	v := d.Svarint()
	if int64(int(v)) != v {
		d.corrupt("section %q: integer %d out of range", d.name, v)
		return 0
	}
	return int(v)
}

// Int32 reads a signed 32-bit integer.
func (d *Dec) Int32() int32 {
	v := d.Svarint()
	if v < -1<<31 || v > 1<<31-1 {
		d.corrupt("section %q: int32 %d out of range", d.name, v)
		return 0
	}
	return int32(v)
}

// Bool reads a boolean.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.corrupt("section %q: bad boolean", d.name)
		}
		return false
	}
}

// Bytes reads a length-prefixed byte string (a fresh copy).
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.corrupt("section %q: byte string length %d exceeds payload", d.name, n)
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.corrupt("section %q: string length %d exceeds payload", d.name, n)
		return ""
	}
	return string(d.take(int(n)))
}

// Len reads an element count for a slice whose elements occupy at
// least elemSize payload bytes each, rejecting counts the remaining
// payload cannot possibly hold. Use it for every slice count so a
// corrupt length fails here instead of in make().
func (d *Dec) Len(elemSize int) int {
	if elemSize < 1 {
		elemSize = 1
	}
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.remaining())/uint64(elemSize) {
		d.corrupt("section %q: count %d exceeds payload", d.name, n)
		return 0
	}
	return int(n)
}

// Cap reads a slice capacity that must be at least n (the slice
// length) and within the global sanity bound. Capacities are
// checkpointed wherever memory accounting reads cap, so restored
// slices keep byte-identical Heap numbers.
func (d *Dec) Cap(n int) int {
	c := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if c < uint64(n) || c > maxSliceCap {
		d.corrupt("section %q: capacity %d out of range (len %d)", d.name, c, n)
		return 0
	}
	return int(c)
}

// Count reads a bare count (not backed byte-for-byte by payload, e.g.
// a free-list length) bounded only by the global sanity limit.
func (d *Dec) Count() int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > maxSliceCap {
		d.corrupt("section %q: count %d out of range", d.name, n)
		return 0
	}
	return int(n)
}
