// Package analysis provides the "+Analysis" component of the paper's
// evaluation (§6 Setup): detecting conflicting event pairs that are
// concurrent with respect to the computed partial order. For HB and SHB
// this is dynamic race detection in the FastTrack style — per-variable
// write epochs and adaptive read metadata (a single epoch that is
// promoted to a full read vector only when reads are actually
// concurrent). Every ordering test is an O(1) epoch comparison against
// Clock.Get, which both tree clocks and vector clocks answer in
// constant time (Remark 1), so the analysis is fair to both.
package analysis

import (
	"fmt"
	"sort"

	"treeclock/internal/vt"
)

// PairKind classifies a detected concurrent conflicting pair.
type PairKind uint8

const (
	// WriteWrite is a pair of concurrent writes.
	WriteWrite PairKind = iota
	// WriteRead is a write concurrent with a later read.
	WriteRead
	// ReadWrite is a read concurrent with a later write.
	ReadWrite
	numPairKinds
)

func (k PairKind) String() string {
	switch k {
	case WriteWrite:
		return "w-w"
	case WriteRead:
		return "w-r"
	case ReadWrite:
		return "r-w"
	default:
		return "?"
	}
}

// Pair is one detected concurrent conflicting pair. Epochs identify the
// exact events: (thread, local time) is unique per event.
type Pair struct {
	Kind   PairKind
	Var    int32
	Prior  vt.Epoch // the earlier access
	Access vt.Epoch // the current access
}

func (p Pair) String() string {
	return fmt.Sprintf("%s race on x%d: t%d@%d vs t%d@%d",
		p.Kind, p.Var, p.Prior.T, p.Prior.Clk, p.Access.T, p.Access.Clk)
}

// maxSamples bounds the retained example pairs; counting continues
// beyond it.
const maxSamples = 64

// Accumulator aggregates detected pairs.
//
// For sharded (parallel) runs an accumulator can be restricted to a
// variable shard with SetShard and made position-aware with
// TrackPositions + SetPos: each worker then accumulates exactly the
// pairs of its own variables, tagged with the global trace position of
// the detecting event, and MergeAccumulators reassembles the workers'
// results into the sequential run's.
type Accumulator struct {
	Total   uint64
	ByKind  [numPairKinds]uint64
	racyVar map[int32]bool
	Samples []Pair

	owns      func(int32) bool // nil: own every variable
	pos       uint64           // trace position of the event being processed
	samplePos []uint64         // Samples[i] was detected at samplePos[i]
	trackPos  bool
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{racyVar: make(map[int32]bool)}
}

// SetShard restricts the accumulator to the variables owns accepts:
// reports for foreign variables are dropped. The predicates of a
// worker group must partition the variable space, or merged counts
// would double- or under-count.
func (a *Accumulator) SetShard(owns func(int32) bool) { a.owns = owns }

// TrackPositions makes Report tag each retained sample with the trace
// position last set via SetPos, so MergeAccumulators can restore
// global trace order across shards.
func (a *Accumulator) TrackPositions() { a.trackPos = true }

// SetPos records the global trace position of the event about to be
// processed (see engine.Runtime.ProcessBatchAt).
func (a *Accumulator) SetPos(pos uint64) { a.pos = pos }

// Report records one detected pair.
func (a *Accumulator) Report(kind PairKind, x int32, prior, access vt.Epoch) {
	if a.owns != nil && !a.owns(x) {
		return
	}
	a.Total++
	a.ByKind[kind]++
	a.racyVar[x] = true
	if len(a.Samples) < maxSamples {
		a.Samples = append(a.Samples, Pair{Kind: kind, Var: x, Prior: prior, Access: access})
		if a.trackPos {
			a.samplePos = append(a.samplePos, a.pos)
		}
	}
}

// RacyVars returns the set of variables with at least one detected pair.
func (a *Accumulator) RacyVars() map[int32]bool { return a.racyVar }

// Summary is a compact copy of the accumulated counts.
type Summary struct {
	Total                            uint64
	WriteWrite, WriteRead, ReadWrite uint64
	Vars                             int
}

// Summary snapshots the counts.
func (a *Accumulator) Summary() Summary {
	return Summary{
		Total:      a.Total,
		WriteWrite: a.ByKind[WriteWrite],
		WriteRead:  a.ByKind[WriteRead],
		ReadWrite:  a.ByKind[ReadWrite],
		Vars:       len(a.racyVar),
	}
}

// MergeAccumulators reassembles per-shard accumulators into the result
// a sequential run over the undivided variable space produces. The
// inputs must come from workers whose shard predicates partition the
// variables (each pair reported by exactly one accumulator) and must
// have position tracking enabled: counts are summed, the racy-variable
// count adds up because the shards are disjoint, and samples are
// re-sorted by (trace position, intra-accumulator order) — ties share
// a detecting event, hence a variable, hence an accumulator, so the
// intra-accumulator index reproduces the sequential report order —
// then truncated to the sequential sample cap. Each accumulator
// retains its shard's first maxSamples pairs, and the merged first
// maxSamples draw at most that many from any one shard, so the
// truncation loses nothing the sequential run would have kept.
func MergeAccumulators(accs []*Accumulator) (Summary, []Pair) {
	var sum Summary
	type posSample struct {
		pair Pair
		pos  uint64
		seq  int
	}
	var all []posSample
	for _, a := range accs {
		s := a.Summary()
		sum.Total += s.Total
		sum.WriteWrite += s.WriteWrite
		sum.WriteRead += s.WriteRead
		sum.ReadWrite += s.ReadWrite
		sum.Vars += s.Vars
		for i, p := range a.Samples {
			pos := uint64(0)
			if i < len(a.samplePos) {
				pos = a.samplePos[i]
			}
			all = append(all, posSample{pair: p, pos: pos, seq: i})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pos != all[j].pos {
			return all[i].pos < all[j].pos
		}
		return all[i].seq < all[j].seq
	})
	if len(all) > maxSamples {
		all = all[:maxSamples]
	}
	var samples []Pair
	for _, s := range all {
		samples = append(samples, s.pair)
	}
	return sum, samples
}

// varState is the per-variable access history.
type varState struct {
	w      vt.Epoch  // last write
	r      vt.Epoch  // last read, when reads so far are totally ordered
	shared vt.Vector // per-thread last reads, once reads were concurrent
}

// Detector performs the epoch checks for one engine run. It is generic
// over the clock type so the same detector code runs on tree clocks and
// vector clocks. Both identifier spaces are dynamic: variables and
// threads beyond the construction-time hints are accommodated on first
// sight, so the detector works under the streaming engine runtime where
// no trace metadata exists up front.
type Detector[C vt.Clock[C]] struct {
	k    int // thread-count high-water mark (sizing hint for read vectors)
	vars []varState
	Acc  *Accumulator
	owns func(int32) bool // nil: detect on every variable
}

// NewDetector returns a detector sized for nVars variables over k
// threads. Both are hints, not limits: state grows on demand.
func NewDetector[C vt.Clock[C]](k, nVars int) *Detector[C] {
	return &Detector[C]{k: k, vars: make([]varState, nVars), Acc: NewAccumulator()}
}

// SetShard restricts the detector to the variables owns accepts:
// accesses to foreign variables are ignored entirely — no checks, no
// access-history state — so a sharded worker's detector memory and
// work cover only its own shard. Because the detector's state is
// per-variable and its checks read only that state plus the (shared,
// shard-independent) thread clock, the owning worker's checks see
// exactly what an unsharded detector would.
func (d *Detector[C]) SetShard(owns func(int32) bool) { d.owns = owns }

// state returns the access history of variable x, growing the variable
// space as needed (amortized doubling).
func (d *Detector[C]) state(x int32) *varState {
	d.vars = vt.GrowSlice(d.vars, int(x)+1)
	return &d.vars[x]
}

// seen notes thread t, keeping k the thread high-water mark.
func (d *Detector[C]) seen(t vt.TID) {
	if int(t) >= d.k {
		d.k = int(t) + 1
	}
}

// Read processes a read of x by thread t whose clock is ct. For SHB the
// call must happen before the engine joins LW_x into ct, so the check
// sees the pre-edge state (the race (lw(r), r) of §5.1).
func (d *Detector[C]) Read(x int32, t vt.TID, ct C) {
	if d.owns != nil && !d.owns(x) {
		return
	}
	vs := d.state(x)
	d.seen(t)
	now := vt.Epoch{T: t, Clk: ct.Get(t)}
	if !vs.w.Zero() && vs.w.Clk > ct.Get(vs.w.T) {
		d.Acc.Report(WriteRead, x, vs.w, now)
	}
	if vs.shared != nil {
		if int(t) >= len(vs.shared) {
			vs.shared = vt.GrowSlice(vs.shared, d.k)
		}
		vs.shared[t] = now.Clk
		return
	}
	if vs.r.Zero() || vs.r.T == t || vs.r.Clk <= ct.Get(vs.r.T) {
		// The previous read is ordered before this one (or same
		// thread): the epoch stays exclusive.
		vs.r = now
		return
	}
	// Concurrent reads: promote to a full read vector.
	vs.shared = vt.NewVector(max(d.k, int(vs.r.T)+1))
	vs.shared[vs.r.T] = vs.r.Clk
	vs.shared[t] = now.Clk
	vs.r = vt.Epoch{}
}

// Write processes a write of x by thread t whose clock is ct. For SHB
// the call must happen before the engine overwrites LW_x.
func (d *Detector[C]) Write(x int32, t vt.TID, ct C) {
	if d.owns != nil && !d.owns(x) {
		return
	}
	vs := d.state(x)
	d.seen(t)
	now := vt.Epoch{T: t, Clk: ct.Get(t)}
	if !vs.w.Zero() && vs.w.Clk > ct.Get(vs.w.T) {
		d.Acc.Report(WriteWrite, x, vs.w, now)
	}
	if vs.shared != nil {
		for u, rc := range vs.shared {
			if rc > ct.Get(vt.TID(u)) {
				d.Acc.Report(ReadWrite, x, vt.Epoch{T: vt.TID(u), Clk: rc}, now)
			}
		}
		vs.shared = nil
	} else if !vs.r.Zero() && vs.r.Clk > ct.Get(vs.r.T) {
		d.Acc.Report(ReadWrite, x, vs.r, now)
	}
	// Reads ordered before this write can never race a later access
	// (it would be transitively ordered), so the read metadata resets.
	vs.r = vt.Epoch{}
	vs.w = now
}
