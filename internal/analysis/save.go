package analysis

// Checkpoint serialization for the detector and accumulator (see
// internal/ckpt). Everything observable — counts, racy-variable sets,
// retained samples and their trace positions — round-trips exactly, so
// a resumed run's reports are byte-identical to the uninterrupted
// run's. Shard predicates (SetShard) are closures over runtime
// configuration and are not serialized; callers re-bind them when
// reconstructing the engine. Maps are encoded in sorted order so the
// same state always produces the same bytes.

import (
	"sort"

	"treeclock/internal/ckpt"
	"treeclock/internal/vt"
)

// Save serializes the accumulator into the open section of e.
func (a *Accumulator) Save(e *ckpt.Enc) {
	e.U64(a.Total)
	for _, k := range a.ByKind {
		e.U64(k)
	}
	ids := make([]int32, 0, len(a.racyVar))
	for x := range a.racyVar {
		ids = append(ids, x)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Uvarint(uint64(len(ids)))
	for _, x := range ids {
		e.Int32(x)
	}
	e.Uvarint(uint64(len(a.Samples)))
	for i := range a.Samples {
		p := &a.Samples[i]
		e.U8(uint8(p.Kind))
		e.Int32(p.Var)
		vt.SaveEpoch(e, p.Prior)
		vt.SaveEpoch(e, p.Access)
	}
	e.Bool(a.trackPos)
	e.Uvarint(uint64(len(a.samplePos)))
	for _, p := range a.samplePos {
		e.U64(p)
	}
	e.U64(a.pos)
}

// Load restores state written by Save, leaving the shard predicate
// untouched. Failures latch in d; on failure the accumulator is
// unchanged.
func (a *Accumulator) Load(d *ckpt.Dec) {
	total := d.U64()
	var byKind [numPairKinds]uint64
	for i := range byKind {
		byKind[i] = d.U64()
	}
	nr := d.Len(1)
	if d.Err() != nil {
		return
	}
	racy := make(map[int32]bool, nr)
	for i := 0; i < nr; i++ {
		racy[d.Int32()] = true
	}
	ns := d.Len(1)
	if d.Err() != nil {
		return
	}
	if ns > maxSamples {
		d.Corruptf("sample count %d exceeds cap %d", ns, maxSamples)
		return
	}
	var samples []Pair
	for i := 0; i < ns; i++ {
		k := PairKind(d.U8())
		if d.Err() == nil && k >= numPairKinds {
			d.Corruptf("bad pair kind %d", k)
		}
		v := d.Int32()
		prior := vt.LoadEpoch(d)
		access := vt.LoadEpoch(d)
		if d.Err() != nil {
			return
		}
		samples = append(samples, Pair{Kind: k, Var: v, Prior: prior, Access: access})
	}
	trackPos := d.Bool()
	np := d.Len(8)
	if d.Err() != nil {
		return
	}
	if np > maxSamples {
		d.Corruptf("sample position count %d exceeds cap %d", np, maxSamples)
		return
	}
	var samplePos []uint64
	for i := 0; i < np; i++ {
		samplePos = append(samplePos, d.U64())
	}
	pos := d.U64()
	if d.Err() != nil {
		return
	}
	a.Total, a.ByKind, a.racyVar, a.Samples = total, byKind, racy, samples
	a.trackPos, a.samplePos, a.pos = trackPos, samplePos, pos
}

// Save serializes the detector — per-variable access histories plus
// its accumulator — into the open section of e.
func (dt *Detector[C]) Save(e *ckpt.Enc) {
	e.Int(dt.k)
	e.Uvarint(uint64(len(dt.vars)))
	for i := range dt.vars {
		vs := &dt.vars[i]
		vt.SaveEpoch(e, vs.w)
		vt.SaveEpoch(e, vs.r)
		if vs.shared == nil {
			e.Bool(false)
			continue
		}
		e.Bool(true)
		e.Uvarint(uint64(len(vs.shared)))
		for _, c := range vs.shared {
			e.Svarint(int64(c))
		}
	}
	dt.Acc.Save(e)
}

// Load restores state written by Save, leaving the shard predicate
// untouched. Failures latch in d.
func (dt *Detector[C]) Load(d *ckpt.Dec) {
	k := d.Int()
	nv := d.Len(1)
	if d.Err() != nil {
		return
	}
	if k < 0 || k > vt.MaxID {
		d.Corruptf("detector thread high-water %d out of range", k)
		return
	}
	vars := make([]varState, nv)
	for i := range vars {
		vs := &vars[i]
		vs.w = vt.LoadEpoch(d)
		vs.r = vt.LoadEpoch(d)
		if d.Bool() {
			n := d.Len(1)
			if d.Err() != nil {
				return
			}
			vs.shared = vt.NewVector(n)
			for j := range vs.shared {
				vs.shared[j] = vt.Time(d.Svarint())
			}
		}
		if d.Err() != nil {
			return
		}
	}
	dt.Acc.Load(d)
	if d.Err() != nil {
		return
	}
	dt.k, dt.vars = k, vars
}
