package analysis

import (
	"testing"

	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

// clockFor builds a vector clock with the given entries (tests drive
// the detector directly, without an engine).
func clockFor(entries ...vt.Time) *vc.VectorClock {
	c := vc.New(len(entries), nil)
	for i, e := range entries {
		c.Inc(vt.TID(i), e)
	}
	return c
}

func TestWriteWriteRace(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	d.Write(0, 0, clockFor(1, 0)) // t0 writes at time 1
	d.Write(0, 1, clockFor(0, 1)) // t1 writes, knows nothing of t0
	sum := d.Acc.Summary()
	if sum.WriteWrite != 1 || sum.Total != 1 {
		t.Errorf("summary = %+v, want one w-w race", sum)
	}
	p := d.Acc.Samples[0]
	if p.Prior != (vt.Epoch{T: 0, Clk: 1}) || p.Access != (vt.Epoch{T: 1, Clk: 1}) {
		t.Errorf("sample pair = %v", p)
	}
}

func TestOrderedWritesNoRace(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	d.Write(0, 0, clockFor(1, 0))
	d.Write(0, 1, clockFor(1, 1)) // t1 knows t0@1: ordered
	if d.Acc.Total != 0 {
		t.Errorf("ordered writes flagged: %+v", d.Acc.Summary())
	}
}

func TestWriteReadRace(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	d.Write(0, 0, clockFor(1, 0))
	d.Read(0, 1, clockFor(0, 1))
	sum := d.Acc.Summary()
	if sum.WriteRead != 1 {
		t.Errorf("summary = %+v, want one w-r race", sum)
	}
}

func TestReadWriteRaceViaEpoch(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	d.Read(0, 0, clockFor(1, 0))
	d.Write(0, 1, clockFor(0, 1))
	sum := d.Acc.Summary()
	if sum.ReadWrite != 1 {
		t.Errorf("summary = %+v, want one r-w race", sum)
	}
}

func TestSharedReadsPromoteAndAllRacesReported(t *testing.T) {
	d := NewDetector[*vc.VectorClock](3, 1)
	d.Read(0, 0, clockFor(1, 0, 0)) // concurrent reads by t0 and t1
	d.Read(0, 1, clockFor(0, 1, 0))
	d.Write(0, 2, clockFor(0, 0, 1)) // t2's write races both reads
	sum := d.Acc.Summary()
	if sum.ReadWrite != 2 {
		t.Errorf("summary = %+v, want two r-w races", sum)
	}
}

func TestOrderedReadKeepsEpoch(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	d.Read(0, 0, clockFor(1, 0))
	d.Read(0, 1, clockFor(1, 1))  // ordered after t0's read: epoch overwritten
	d.Write(0, 0, clockFor(2, 0)) // t0's write: races t1's read only
	sum := d.Acc.Summary()
	if sum.ReadWrite != 1 {
		t.Errorf("summary = %+v, want exactly one r-w race", sum)
	}
}

func TestSameThreadNeverRaces(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	c := clockFor(1, 0)
	d.Write(0, 0, c)
	c.Inc(0, 1)
	d.Read(0, 0, c)
	c.Inc(0, 1)
	d.Write(0, 0, c)
	if d.Acc.Total != 0 {
		t.Errorf("same-thread accesses flagged: %+v", d.Acc.Summary())
	}
}

func TestWriteResetsReadMetadata(t *testing.T) {
	d := NewDetector[*vc.VectorClock](3, 1)
	d.Read(0, 0, clockFor(1, 0, 0))
	// t1's write is ordered after the read and resets read metadata.
	d.Write(0, 1, clockFor(1, 1, 0))
	// t2 is ordered after t1's write: no race with the old read.
	d.Write(0, 2, clockFor(1, 1, 1))
	if d.Acc.Total != 0 {
		t.Errorf("stale read metadata produced races: %+v", d.Acc.Summary())
	}
}

func TestVariablesIndependent(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 2)
	d.Write(0, 0, clockFor(1, 0))
	d.Write(1, 1, clockFor(0, 1)) // different variable: no conflict
	if d.Acc.Total != 0 {
		t.Errorf("cross-variable race reported: %+v", d.Acc.Summary())
	}
}

func TestAccumulatorSampleCap(t *testing.T) {
	a := NewAccumulator()
	for i := 0; i < 1000; i++ {
		a.Report(WriteWrite, int32(i%4), vt.Epoch{T: 0, Clk: vt.Time(i + 1)}, vt.Epoch{T: 1, Clk: 1})
	}
	if a.Total != 1000 {
		t.Errorf("Total = %d", a.Total)
	}
	if len(a.Samples) != maxSamples {
		t.Errorf("samples = %d, want cap %d", len(a.Samples), maxSamples)
	}
	if len(a.RacyVars()) != 4 {
		t.Errorf("racy vars = %d, want 4", len(a.RacyVars()))
	}
	s := a.Summary()
	if s.WriteWrite != 1000 || s.Vars != 4 {
		t.Errorf("summary = %+v", s)
	}
}

func TestPairKindString(t *testing.T) {
	if WriteWrite.String() != "w-w" || WriteRead.String() != "w-r" || ReadWrite.String() != "r-w" {
		t.Error("kind names wrong")
	}
	if PairKind(9).String() != "?" {
		t.Error("unknown kind must render '?'")
	}
	p := Pair{Kind: WriteWrite, Var: 3, Prior: vt.Epoch{T: 0, Clk: 1}, Access: vt.Epoch{T: 1, Clk: 2}}
	if p.String() != "w-w race on x3: t0@1 vs t1@2" {
		t.Errorf("Pair.String() = %q", p.String())
	}
}

// shardedPair reports a pair on a sharded accumulator at a position.
func reportAt(a *Accumulator, pos uint64, kind PairKind, x int32, prior, access vt.Epoch) {
	a.SetPos(pos)
	a.Report(kind, x, prior, access)
}

// TestAccumulatorShardGate pins that a sharded accumulator drops
// foreign variables entirely.
func TestAccumulatorShardGate(t *testing.T) {
	a := NewAccumulator()
	a.SetShard(func(x int32) bool { return x%2 == 0 })
	a.Report(WriteWrite, 0, vt.Epoch{T: 0, Clk: 1}, vt.Epoch{T: 1, Clk: 1})
	a.Report(WriteWrite, 1, vt.Epoch{T: 0, Clk: 2}, vt.Epoch{T: 1, Clk: 2})
	sum := a.Summary()
	if sum.Total != 1 || sum.Vars != 1 || len(a.Samples) != 1 || a.Samples[0].Var != 0 {
		t.Fatalf("shard gate leaked: %+v samples %v", sum, a.Samples)
	}
}

// TestMergeAccumulators builds two shards whose reports interleave in
// trace order and checks the merge restores the sequential result:
// summed counts, samples sorted by position with intra-event order
// preserved, truncation at the cap.
func TestMergeAccumulators(t *testing.T) {
	even, odd := NewAccumulator(), NewAccumulator()
	even.SetShard(func(x int32) bool { return x%2 == 0 })
	odd.SetShard(func(x int32) bool { return x%2 == 1 })
	even.TrackPositions()
	odd.TrackPositions()
	// Trace order: pos 3 (x1), pos 5 (x0), pos 5 second report same
	// event, pos 9 (x3). Reports arrive via both accumulators as every
	// worker would deliver them: each sees only its own variables.
	for _, a := range []*Accumulator{even, odd} {
		reportAt(a, 3, WriteRead, 1, vt.Epoch{T: 0, Clk: 1}, vt.Epoch{T: 1, Clk: 2})
		reportAt(a, 5, WriteWrite, 0, vt.Epoch{T: 1, Clk: 3}, vt.Epoch{T: 2, Clk: 1})
		reportAt(a, 5, ReadWrite, 0, vt.Epoch{T: 0, Clk: 4}, vt.Epoch{T: 2, Clk: 1})
		reportAt(a, 9, ReadWrite, 3, vt.Epoch{T: 2, Clk: 2}, vt.Epoch{T: 0, Clk: 5})
	}
	sum, samples := MergeAccumulators([]*Accumulator{even, odd})
	if sum.Total != 4 || sum.WriteWrite != 1 || sum.WriteRead != 1 || sum.ReadWrite != 2 || sum.Vars != 3 {
		t.Fatalf("merged summary = %+v", sum)
	}
	wantVars := []int32{1, 0, 0, 3}
	if len(samples) != len(wantVars) {
		t.Fatalf("merged %d samples, want %d", len(samples), len(wantVars))
	}
	for i, x := range wantVars {
		if samples[i].Var != x {
			t.Fatalf("sample %d is on x%d, want x%d (order %v)", i, samples[i].Var, x, samples)
		}
	}
	// Intra-event order: the two pos-5 reports must keep report order.
	if samples[1].Kind != WriteWrite || samples[2].Kind != ReadWrite {
		t.Fatalf("intra-event order lost: %v", samples)
	}
}

// TestMergeAccumulatorsTruncates pins the sample cap across shards.
func TestMergeAccumulatorsTruncates(t *testing.T) {
	shards := []*Accumulator{NewAccumulator(), NewAccumulator()}
	for w, a := range shards {
		w := int32(w)
		a.SetShard(func(x int32) bool { return x%2 == w })
		a.TrackPositions()
	}
	// 200 races alternate shards in position order; the merge must
	// keep exactly the first maxSamples in that global order.
	for pos := uint64(0); pos < 200; pos++ {
		x := int32(pos % 2)
		for _, a := range shards {
			reportAt(a, pos, WriteWrite, x, vt.Epoch{T: 0, Clk: vt.Time(pos + 1)}, vt.Epoch{T: 1, Clk: 1})
		}
	}
	sum, samples := MergeAccumulators(shards)
	if sum.Total != 200 {
		t.Fatalf("merged total = %d, want 200", sum.Total)
	}
	if len(samples) != maxSamples {
		t.Fatalf("kept %d samples, want %d", len(samples), maxSamples)
	}
	for i, p := range samples {
		if p.Prior.Clk != vt.Time(i+1) {
			t.Fatalf("sample %d out of order: %v", i, p)
		}
	}
}

// TestDetectorShardSkipsForeignState pins both halves of SetShard: no
// reports for foreign variables and no state either (a later owned-
// variable check cannot be perturbed, and memory stays sharded).
func TestDetectorShardSkipsForeignState(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 0)
	d.SetShard(func(x int32) bool { return x == 0 })
	d.Write(1, 0, clockFor(1, 0)) // foreign: must leave no trace
	d.Write(1, 1, clockFor(0, 1)) // foreign racing write: no report
	d.Write(0, 0, clockFor(2, 0)) // owned
	d.Write(0, 1, clockFor(0, 2)) // owned racing write: one report
	sum := d.Acc.Summary()
	if sum.Total != 1 || sum.Vars != 1 {
		t.Fatalf("sharded detector summary = %+v", sum)
	}
	if len(d.vars) > 1 {
		t.Fatalf("foreign variable state allocated: %d var slots", len(d.vars))
	}
}
