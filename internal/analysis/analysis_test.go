package analysis

import (
	"testing"

	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

// clockFor builds a vector clock with the given entries (tests drive
// the detector directly, without an engine).
func clockFor(entries ...vt.Time) *vc.VectorClock {
	c := vc.New(len(entries), nil)
	for i, e := range entries {
		c.Inc(vt.TID(i), e)
	}
	return c
}

func TestWriteWriteRace(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	d.Write(0, 0, clockFor(1, 0)) // t0 writes at time 1
	d.Write(0, 1, clockFor(0, 1)) // t1 writes, knows nothing of t0
	sum := d.Acc.Summary()
	if sum.WriteWrite != 1 || sum.Total != 1 {
		t.Errorf("summary = %+v, want one w-w race", sum)
	}
	p := d.Acc.Samples[0]
	if p.Prior != (vt.Epoch{T: 0, Clk: 1}) || p.Access != (vt.Epoch{T: 1, Clk: 1}) {
		t.Errorf("sample pair = %v", p)
	}
}

func TestOrderedWritesNoRace(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	d.Write(0, 0, clockFor(1, 0))
	d.Write(0, 1, clockFor(1, 1)) // t1 knows t0@1: ordered
	if d.Acc.Total != 0 {
		t.Errorf("ordered writes flagged: %+v", d.Acc.Summary())
	}
}

func TestWriteReadRace(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	d.Write(0, 0, clockFor(1, 0))
	d.Read(0, 1, clockFor(0, 1))
	sum := d.Acc.Summary()
	if sum.WriteRead != 1 {
		t.Errorf("summary = %+v, want one w-r race", sum)
	}
}

func TestReadWriteRaceViaEpoch(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	d.Read(0, 0, clockFor(1, 0))
	d.Write(0, 1, clockFor(0, 1))
	sum := d.Acc.Summary()
	if sum.ReadWrite != 1 {
		t.Errorf("summary = %+v, want one r-w race", sum)
	}
}

func TestSharedReadsPromoteAndAllRacesReported(t *testing.T) {
	d := NewDetector[*vc.VectorClock](3, 1)
	d.Read(0, 0, clockFor(1, 0, 0)) // concurrent reads by t0 and t1
	d.Read(0, 1, clockFor(0, 1, 0))
	d.Write(0, 2, clockFor(0, 0, 1)) // t2's write races both reads
	sum := d.Acc.Summary()
	if sum.ReadWrite != 2 {
		t.Errorf("summary = %+v, want two r-w races", sum)
	}
}

func TestOrderedReadKeepsEpoch(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	d.Read(0, 0, clockFor(1, 0))
	d.Read(0, 1, clockFor(1, 1))  // ordered after t0's read: epoch overwritten
	d.Write(0, 0, clockFor(2, 0)) // t0's write: races t1's read only
	sum := d.Acc.Summary()
	if sum.ReadWrite != 1 {
		t.Errorf("summary = %+v, want exactly one r-w race", sum)
	}
}

func TestSameThreadNeverRaces(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 1)
	c := clockFor(1, 0)
	d.Write(0, 0, c)
	c.Inc(0, 1)
	d.Read(0, 0, c)
	c.Inc(0, 1)
	d.Write(0, 0, c)
	if d.Acc.Total != 0 {
		t.Errorf("same-thread accesses flagged: %+v", d.Acc.Summary())
	}
}

func TestWriteResetsReadMetadata(t *testing.T) {
	d := NewDetector[*vc.VectorClock](3, 1)
	d.Read(0, 0, clockFor(1, 0, 0))
	// t1's write is ordered after the read and resets read metadata.
	d.Write(0, 1, clockFor(1, 1, 0))
	// t2 is ordered after t1's write: no race with the old read.
	d.Write(0, 2, clockFor(1, 1, 1))
	if d.Acc.Total != 0 {
		t.Errorf("stale read metadata produced races: %+v", d.Acc.Summary())
	}
}

func TestVariablesIndependent(t *testing.T) {
	d := NewDetector[*vc.VectorClock](2, 2)
	d.Write(0, 0, clockFor(1, 0))
	d.Write(1, 1, clockFor(0, 1)) // different variable: no conflict
	if d.Acc.Total != 0 {
		t.Errorf("cross-variable race reported: %+v", d.Acc.Summary())
	}
}

func TestAccumulatorSampleCap(t *testing.T) {
	a := NewAccumulator()
	for i := 0; i < 1000; i++ {
		a.Report(WriteWrite, int32(i%4), vt.Epoch{T: 0, Clk: vt.Time(i + 1)}, vt.Epoch{T: 1, Clk: 1})
	}
	if a.Total != 1000 {
		t.Errorf("Total = %d", a.Total)
	}
	if len(a.Samples) != maxSamples {
		t.Errorf("samples = %d, want cap %d", len(a.Samples), maxSamples)
	}
	if len(a.RacyVars()) != 4 {
		t.Errorf("racy vars = %d, want 4", len(a.RacyVars()))
	}
	s := a.Summary()
	if s.WriteWrite != 1000 || s.Vars != 4 {
		t.Errorf("summary = %+v", s)
	}
}

func TestPairKindString(t *testing.T) {
	if WriteWrite.String() != "w-w" || WriteRead.String() != "w-r" || ReadWrite.String() != "r-w" {
		t.Error("kind names wrong")
	}
	if PairKind(9).String() != "?" {
		t.Error("unknown kind must render '?'")
	}
	p := Pair{Kind: WriteWrite, Var: 3, Prior: vt.Epoch{T: 0, Clk: 1}, Access: vt.Epoch{T: 1, Clk: 2}}
	if p.String() != "w-w race on x3: t0@1 vs t1@2" {
		t.Errorf("Pair.String() = %q", p.String())
	}
}
