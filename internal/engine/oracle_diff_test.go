package engine_test

import (
	"testing"

	"treeclock/internal/analysis"
	"treeclock/internal/core"
	"treeclock/internal/engine"
	"treeclock/internal/gen"
	"treeclock/internal/hb"
	"treeclock/internal/maz"
	"treeclock/internal/oracle"
	"treeclock/internal/shb"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
	"treeclock/internal/wcp"
)

// This file is the registry-wide oracle harness: every internal/gen
// suite workload runs through the definition-level oracle for every
// partial order and is compared against the corresponding streaming
// engine — per-event timestamps and race sets, with both clock data
// structures. The report-level differential tests at the repository
// root catch summary drift; this harness catches the drift those
// can't, e.g. two timestamp errors canceling in the race counts.

// suiteTraces materializes the gen suite small enough for the
// quadratic/fixpoint oracles. Short mode trims the heavy tail.
func suiteTraces(t *testing.T) []*trace.Trace {
	scale := 0.02
	maxEvents := 1 << 30
	if testing.Short() {
		scale = 0.01
		maxEvents = 1500
	}
	var out []*trace.Trace
	for _, e := range gen.SuiteEntries() {
		tr := e.Build(scale)
		if tr.Len() > maxEvents {
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid suite trace: %v", tr.Meta.Name, err)
		}
		out = append(out, tr)
	}
	return out
}

var oracleOrders = []oracle.PO{oracle.HB, oracle.SHB, oracle.MAZ, oracle.WCP}

// eventIdx maps (thread, local time) epochs back to event indices.
func eventIdx(tr *trace.Trace) map[vt.Epoch]int {
	m := make(map[vt.Epoch]int, tr.Len())
	lt := tr.LocalTimes()
	for i, e := range tr.Events {
		m[vt.Epoch{T: e.T, Clk: lt[i]}] = i
	}
	return m
}

// runOrder drives one engine over the trace event by event, comparing
// each event's timestamp with the oracle, and returns the accumulated
// analysis results.
func runOrder[C vt.Clock[C]](t *testing.T, tr *trace.Trace, po oracle.PO, f vt.Factory[C], res *oracle.Result, label string) *analysis.Accumulator {
	t.Helper()
	var (
		rt        *engine.Runtime[C]
		acc       *analysis.Accumulator
		timestamp func(i int, ev trace.Event, dst vt.Vector) vt.Vector
	)
	lt := tr.LocalTimes()
	switch po {
	case oracle.HB:
		rt = engine.New[C](hb.NewSemantics[C](), f)
		acc = rt.EnableRaceDetection().Acc
	case oracle.SHB:
		rt = engine.New[C](shb.NewSemantics[C](), f)
		acc = rt.EnableRaceDetection().Acc
	case oracle.MAZ:
		rt = engine.New[C](maz.NewSemantics[C](), f)
		acc = rt.EnableAnalysis()
	case oracle.WCP:
		sem := wcp.NewSemantics[C]()
		rt = engine.New[C](sem, f)
		acc = rt.EnableAnalysis()
		timestamp = func(i int, ev trace.Event, dst vt.Vector) vt.Vector {
			return sem.Timestamp(ev.T, lt[i], dst)
		}
	}
	if timestamp == nil {
		timestamp = func(i int, ev trace.Event, dst vt.Vector) vt.Vector {
			// The runtime grows clocks on demand, so a clock's Vector
			// may fill fewer than k entries; clear the scratch first.
			for u := range dst {
				dst[u] = 0
			}
			return rt.Timestamp(ev.T, dst)
		}
	}
	dst := vt.NewVector(tr.Meta.Threads)
	for i, ev := range tr.Events {
		rt.Step(ev)
		got := timestamp(i, ev, dst)
		if !got.Equal(res.Post[i]) {
			t.Fatalf("%s/%v/%s: event %d (%v): timestamp %v, oracle %v",
				tr.Meta.Name, po, label, i, ev, got, res.Post[i])
		}
	}
	return acc
}

// checkRaceSets compares the engine's detected pairs and racy-variable
// set against the oracle for one order.
func checkRaceSets(t *testing.T, tr *trace.Trace, po oracle.PO, res *oracle.Result, acc *analysis.Accumulator) {
	t.Helper()
	idx := eventIdx(tr)
	// Sample soundness. HB and WCP detectors check against the final
	// (post-edge) timestamps; SHB and MAZ check against the pre-edge
	// state, which is what their samples must be concurrent with.
	for _, p := range acc.Samples {
		i, ok1 := idx[p.Prior]
		j, ok2 := idx[p.Access]
		if !ok1 || !ok2 {
			t.Fatalf("%s/%v: pair %v names unknown events", tr.Meta.Name, po, p)
		}
		if !trace.Conflicting(tr.Events[i], tr.Events[j]) {
			t.Errorf("%s/%v: pair %v is not conflicting", tr.Meta.Name, po, p)
		}
		switch po {
		case oracle.HB, oracle.WCP:
			if !res.Concurrent(i, j) {
				t.Errorf("%s/%v: reported pair %v is ordered", tr.Meta.Name, po, p)
			}
		case oracle.SHB, oracle.MAZ:
			if res.Post[i].LessEq(res.Pre[j]) {
				t.Errorf("%s/%v: reported pair %v is ordered before its own edge", tr.Meta.Name, po, p)
			}
		}
	}
	// Racy-variable sets. For HB and WCP the oracle's race enumeration
	// is the ground truth in both directions. For SHB the ground truth
	// is the pre-edge race set; for MAZ (which orders every conflicting
	// pair) the reversible-pair candidates.
	var want map[int32]bool
	switch po {
	case oracle.HB, oracle.WCP:
		want = res.RacyVars(tr)
	case oracle.SHB, oracle.MAZ:
		want = preRacyVars(tr, res)
	}
	got := acc.RacyVars()
	for x := range want {
		if !got[x] {
			t.Errorf("%s/%v: variable x%d has an oracle race the engine missed", tr.Meta.Name, po, x)
		}
	}
	for x := range got {
		if !want[x] {
			t.Errorf("%s/%v: engine flagged race-free variable x%d", tr.Meta.Name, po, x)
		}
	}
}

// preRacyVars enumerates the variables with a conflicting pair whose
// prior access is not ordered before the later access's pre-edge
// timestamp — the quantity the SHB and MAZ analyses report.
func preRacyVars(tr *trace.Trace, res *oracle.Result) map[int32]bool {
	racy := make(map[int32]bool)
	byVar := make(map[int32][]int)
	for i, e := range tr.Events {
		if e.Kind.IsAccess() {
			byVar[e.Obj] = append(byVar[e.Obj], i)
		}
	}
	for x, idxs := range byVar {
		for a := 0; a < len(idxs) && !racy[x]; a++ {
			for b := a + 1; b < len(idxs); b++ {
				i, j := idxs[a], idxs[b]
				if trace.Conflicting(tr.Events[i], tr.Events[j]) && !res.Post[i].LessEq(res.Pre[j]) {
					racy[x] = true
					break
				}
			}
		}
	}
	return racy
}

// TestLockClockGrowthAgainstOracle pins the lock-clock capacity
// behavior of the streaming runtime: Runtime.lock() allocates a lock's
// clock at the thread capacity current at first sight, so a clock
// created when one thread existed is later joined into (and
// monotone-copied from) clocks of a grown thread space. The binary
// clock operations must grow the smaller operand (the vt.Clock
// capacity contract); this trace — lock 0's clock is created at
// capacity 1, then thread 5 jumps the space to 6 and reuses the lock —
// would surface any engine that fails to, by diverging from the
// oracle's timestamps.
func TestLockClockGrowthAgainstOracle(t *testing.T) {
	tr := &trace.Trace{
		Meta: trace.Meta{Name: "lock-before-growth", Threads: 6, Locks: 2, Vars: 3},
		Events: []trace.Event{
			{T: 0, Obj: 0, Kind: trace.Acquire},
			{T: 0, Obj: 0, Kind: trace.Write},
			{T: 0, Obj: 0, Kind: trace.Release}, // lock 0's clock: capacity 1
			{T: 5, Obj: 1, Kind: trace.Write},   // thread space grows to 6
			{T: 5, Obj: 0, Kind: trace.Acquire}, // small lock clock joins a big thread clock
			{T: 5, Obj: 0, Kind: trace.Write},
			{T: 5, Obj: 0, Kind: trace.Release}, // big thread clock copied over the small lock clock
			{T: 2, Obj: 0, Kind: trace.Acquire},
			{T: 2, Obj: 0, Kind: trace.Read},
			{T: 2, Obj: 2, Kind: trace.Write},
			{T: 2, Obj: 0, Kind: trace.Release},
			{T: 0, Obj: 1, Kind: trace.Acquire}, // lock 1: created after the growth
			{T: 0, Obj: 1, Kind: trace.Read},
			{T: 0, Obj: 1, Kind: trace.Release},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	for _, po := range oracleOrders {
		res := oracle.Timestamps(tr, po)
		accTC := runOrder(t, tr, po, core.Factory(nil), res, "tree")
		accVC := runOrder(t, tr, po, vc.Factory(nil), res, "vc")
		if accTC.Summary() != accVC.Summary() {
			t.Errorf("%v: summaries diverge across clocks: tree %+v, vc %+v",
				po, accTC.Summary(), accVC.Summary())
		}
		checkRaceSets(t, tr, po, res, accTC)
	}
}

// TestSuiteAgainstOracle is the registry-wide property test: for every
// suite workload and every registered partial order, both clock
// variants reproduce the oracle's per-event timestamps exactly, and
// the detected race sets agree with the oracle's.
func TestSuiteAgainstOracle(t *testing.T) {
	for _, tr := range suiteTraces(t) {
		tr := tr
		t.Run(tr.Meta.Name, func(t *testing.T) {
			for _, po := range oracleOrders {
				res := oracle.Timestamps(tr, po)
				accTC := runOrder(t, tr, po, core.Factory(nil), res, "tree")
				accVC := runOrder(t, tr, po, vc.Factory(nil), res, "vc")
				if accTC.Summary() != accVC.Summary() {
					t.Errorf("%v: summaries diverge across clocks: tree %+v, vc %+v",
						po, accTC.Summary(), accVC.Summary())
				}
				checkRaceSets(t, tr, po, res, accTC)
			}
		})
	}
}
