package engine_test

import (
	"strings"
	"testing"

	"treeclock/internal/core"
	"treeclock/internal/engine"
	"treeclock/internal/gen"
	"treeclock/internal/hb"
	"treeclock/internal/maz"
	"treeclock/internal/shb"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

// newRuntime builds a dynamic runtime for one partial order.
func newRuntime[C vt.Clock[C]](t *testing.T, order string, f vt.Factory[C]) *engine.Runtime[C] {
	t.Helper()
	switch order {
	case "hb":
		return engine.New[C](hb.NewSemantics[C](), f)
	case "shb":
		return engine.New[C](shb.NewSemantics[C](), f)
	case "maz":
		return engine.New[C](maz.NewSemantics[C](), f)
	}
	t.Fatalf("unknown order %q", order)
	return nil
}

var orders = []string{"hb", "shb", "maz"}

// TestDynamicMatchesPreSized is the core streaming property: a runtime
// that discovers every identifier on the fly computes exactly the same
// final timestamps as one pre-sized from the trace metadata.
func TestDynamicMatchesPreSized(t *testing.T) {
	traces := []*trace.Trace{
		gen.Mixed(gen.Config{Name: "mix", Threads: 9, Locks: 4, Vars: 24, Events: 3000, Seed: 3, SyncFrac: 0.3}),
		gen.Star(8, 1500, 5),
		gen.ForkJoinTree(5, 30, 7),
	}
	for _, tr := range traces {
		for _, order := range orders {
			// Tree clocks.
			dyn := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
			dyn.Process(tr.Events)
			sized := engineWithMeta(t, order, tr.Meta)
			sized.Process(tr.Events)
			if dyn.Threads() > tr.Meta.Threads {
				t.Fatalf("%s/%s: discovered %d threads, meta says %d",
					tr.Meta.Name, order, dyn.Threads(), tr.Meta.Threads)
			}
			k := tr.Meta.Threads
			for th := 0; th < dyn.Threads(); th++ {
				got := dyn.Timestamp(vt.TID(th), vt.NewVector(k))
				want := sized.Timestamp(vt.TID(th), vt.NewVector(k))
				if !got.Equal(want) {
					t.Fatalf("%s/%s: thread %d: dynamic %v, pre-sized %v",
						tr.Meta.Name, order, th, got, want)
				}
			}
		}
	}
}

func engineWithMeta(t *testing.T, order string, meta trace.Meta) *engine.Runtime[*core.TreeClock] {
	t.Helper()
	switch order {
	case "hb":
		return engine.NewWithMeta[*core.TreeClock](hb.NewSemantics[*core.TreeClock](), core.Factory(nil), meta)
	case "shb":
		return engine.NewWithMeta[*core.TreeClock](shb.NewSemantics[*core.TreeClock](), core.Factory(nil), meta)
	case "maz":
		return engine.NewWithMeta[*core.TreeClock](maz.NewSemantics[*core.TreeClock](), core.Factory(nil), meta)
	}
	t.Fatalf("unknown order %q", order)
	return nil
}

// TestRuntimeDiscoversIdentifiers feeds a trace whose identifiers
// appear out of order and checks the discovered Meta.
func TestRuntimeDiscoversIdentifiers(t *testing.T) {
	src := trace.NewScanner(strings.NewReader(`
t9 w x41
t9 acq l7
t9 rel l7
t2 acq l7
t2 r x41
t2 rel l7
`))
	rt := engine.New[*vc.VectorClock](hb.NewSemantics[*vc.VectorClock](), vc.Factory(nil))
	det := rt.EnableRaceDetection()
	if err := rt.ProcessSource(src); err != nil {
		t.Fatal(err)
	}
	meta := rt.Meta()
	if meta.Threads != 2 || meta.Locks != 1 || meta.Vars != 1 {
		t.Errorf("discovered meta = %+v, want 2 threads, 1 lock, 1 var", meta)
	}
	if rt.Events() != 6 {
		t.Errorf("Events() = %d, want 6", rt.Events())
	}
	if det.Acc.Total != 0 {
		t.Errorf("lock-ordered accesses flagged racy: %d", det.Acc.Total)
	}
}

// TestRuntimeSparseThreadIDs exercises growth with a thread id far
// beyond anything seen before (binary traces don't intern ids).
func TestRuntimeSparseThreadIDs(t *testing.T) {
	events := []trace.Event{
		{T: 0, Obj: 0, Kind: trace.Write},
		{T: 40, Obj: 0, Kind: trace.Write},
		{T: 3, Obj: 0, Kind: trace.Read},
	}
	for _, order := range orders {
		rt := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		var total uint64
		if order == "maz" {
			acc := rt.EnableAnalysis()
			rt.Process(events)
			total = acc.Total
		} else {
			det := rt.EnableRaceDetection()
			rt.Process(events)
			total = det.Acc.Total
		}
		if rt.Threads() != 41 {
			t.Errorf("%s: Threads() = %d, want 41", order, rt.Threads())
		}
		if order == "hb" && total != 2 {
			// w0-w40 (write-write) and w40-r3 (write-read): the
			// FastTrack detector checks reads against the last write.
			t.Errorf("hb: %d races, want 2", total)
		}
	}
}

// TestForkJoinAcrossGrowth checks fork targets create and order the
// child thread correctly when the child id triggers growth.
func TestForkJoinAcrossGrowth(t *testing.T) {
	tr, err := trace.ParseTextString(`
t0 w x0
t0 fork t1
t1 r x0
t0 join t1
t0 w x0
`)
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.New[*core.TreeClock](hb.NewSemantics[*core.TreeClock](), core.Factory(nil))
	det := rt.EnableRaceDetection()
	rt.Process(tr.Events)
	if det.Acc.Total != 0 {
		t.Errorf("fork/join-ordered accesses flagged racy: %v", det.Acc.Samples)
	}
	got := rt.Timestamp(0, vt.NewVector(rt.Threads()))
	if !got.Equal(vt.Vector{4, 1}) { // t0: w, fork, join, w; knows t1@1
		t.Errorf("final t0 timestamp %v, want [4, 1]", got)
	}
}

// TestProcessSourceConsumptionModes runs one trace through every
// consumption mode of ProcessSource — per-event scalar, caller-buffer
// batches (via the in-memory replayer) and the pipelined zero-copy
// producer — and checks the final timestamps are identical.
func TestProcessSourceConsumptionModes(t *testing.T) {
	tr := gen.Mixed(gen.Config{Name: "modes", Threads: 8, Locks: 4, Vars: 32, Events: 4000, Seed: 9, SyncFrac: 0.3})
	for _, order := range orders {
		ref := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		ref.Process(tr.Events)

		scalar := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		if err := scalar.ProcessScalar(trace.NewReplayer(tr)); err != nil {
			t.Fatalf("%s: scalar: %v", order, err)
		}
		batched := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		if err := batched.ProcessSource(trace.NewReplayer(tr)); err != nil {
			t.Fatalf("%s: batched: %v", order, err)
		}
		smallBuf := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		if err := smallBuf.ProcessBatches(trace.NewReplayer(tr), make([]trace.Event, 7)); err != nil {
			t.Fatalf("%s: small buffer: %v", order, err)
		}
		piped := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		p := trace.NewPipeline(trace.NewReplayer(tr), 3, 64)
		if err := piped.ProcessSource(p); err != nil {
			t.Fatalf("%s: pipelined: %v", order, err)
		}
		p.Close()

		k := tr.Meta.Threads
		for _, rt := range []*engine.Runtime[*core.TreeClock]{scalar, batched, smallBuf, piped} {
			if rt.Events() != uint64(tr.Len()) {
				t.Fatalf("%s: processed %d events, want %d", order, rt.Events(), tr.Len())
			}
			for th := 0; th < rt.Threads(); th++ {
				got := rt.Timestamp(vt.TID(th), vt.NewVector(k))
				want := ref.Timestamp(vt.TID(th), vt.NewVector(k))
				if !got.Equal(want) {
					t.Fatalf("%s: thread %d: %v, want %v", order, th, got, want)
				}
			}
		}
	}
}
