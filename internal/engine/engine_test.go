package engine_test

import (
	"fmt"
	"strings"
	"testing"

	"treeclock/internal/core"
	"treeclock/internal/engine"
	"treeclock/internal/gen"
	"treeclock/internal/hb"
	"treeclock/internal/maz"
	"treeclock/internal/shb"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

// newRuntime builds a dynamic runtime for one partial order.
func newRuntime[C vt.Clock[C]](t *testing.T, order string, f vt.Factory[C]) *engine.Runtime[C] {
	t.Helper()
	switch order {
	case "hb":
		return engine.New[C](hb.NewSemantics[C](), f)
	case "shb":
		return engine.New[C](shb.NewSemantics[C](), f)
	case "maz":
		return engine.New[C](maz.NewSemantics[C](), f)
	}
	t.Fatalf("unknown order %q", order)
	return nil
}

var orders = []string{"hb", "shb", "maz"}

// TestDynamicMatchesPreSized is the core streaming property: a runtime
// that discovers every identifier on the fly computes exactly the same
// final timestamps as one pre-sized from the trace metadata.
func TestDynamicMatchesPreSized(t *testing.T) {
	traces := []*trace.Trace{
		gen.Mixed(gen.Config{Name: "mix", Threads: 9, Locks: 4, Vars: 24, Events: 3000, Seed: 3, SyncFrac: 0.3}),
		gen.Star(8, 1500, 5),
		gen.ForkJoinTree(5, 30, 7),
	}
	for _, tr := range traces {
		for _, order := range orders {
			// Tree clocks.
			dyn := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
			dyn.Process(tr.Events)
			sized := engineWithMeta(t, order, tr.Meta)
			sized.Process(tr.Events)
			if dyn.Threads() > tr.Meta.Threads {
				t.Fatalf("%s/%s: discovered %d threads, meta says %d",
					tr.Meta.Name, order, dyn.Threads(), tr.Meta.Threads)
			}
			k := tr.Meta.Threads
			for th := 0; th < dyn.Threads(); th++ {
				got := dyn.Timestamp(vt.TID(th), vt.NewVector(k))
				want := sized.Timestamp(vt.TID(th), vt.NewVector(k))
				if !got.Equal(want) {
					t.Fatalf("%s/%s: thread %d: dynamic %v, pre-sized %v",
						tr.Meta.Name, order, th, got, want)
				}
			}
		}
	}
}

func engineWithMeta(t *testing.T, order string, meta trace.Meta) *engine.Runtime[*core.TreeClock] {
	t.Helper()
	switch order {
	case "hb":
		return engine.NewWithMeta[*core.TreeClock](hb.NewSemantics[*core.TreeClock](), core.Factory(nil), meta)
	case "shb":
		return engine.NewWithMeta[*core.TreeClock](shb.NewSemantics[*core.TreeClock](), core.Factory(nil), meta)
	case "maz":
		return engine.NewWithMeta[*core.TreeClock](maz.NewSemantics[*core.TreeClock](), core.Factory(nil), meta)
	}
	t.Fatalf("unknown order %q", order)
	return nil
}

// TestRuntimeDiscoversIdentifiers feeds a trace whose identifiers
// appear out of order and checks the discovered Meta.
func TestRuntimeDiscoversIdentifiers(t *testing.T) {
	src := trace.NewScanner(strings.NewReader(`
t9 w x41
t9 acq l7
t9 rel l7
t2 acq l7
t2 r x41
t2 rel l7
`))
	rt := engine.New[*vc.VectorClock](hb.NewSemantics[*vc.VectorClock](), vc.Factory(nil))
	det := rt.EnableRaceDetection()
	if err := rt.ProcessSource(src); err != nil {
		t.Fatal(err)
	}
	meta := rt.Meta()
	if meta.Threads != 2 || meta.Locks != 1 || meta.Vars != 1 {
		t.Errorf("discovered meta = %+v, want 2 threads, 1 lock, 1 var", meta)
	}
	if rt.Events() != 6 {
		t.Errorf("Events() = %d, want 6", rt.Events())
	}
	if det.Acc.Total != 0 {
		t.Errorf("lock-ordered accesses flagged racy: %d", det.Acc.Total)
	}
}

// TestRuntimeSparseThreadIDs exercises growth with a thread id far
// beyond anything seen before (binary traces don't intern ids).
func TestRuntimeSparseThreadIDs(t *testing.T) {
	events := []trace.Event{
		{T: 0, Obj: 0, Kind: trace.Write},
		{T: 40, Obj: 0, Kind: trace.Write},
		{T: 3, Obj: 0, Kind: trace.Read},
	}
	for _, order := range orders {
		rt := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		var total uint64
		if order == "maz" {
			acc := rt.EnableAnalysis()
			rt.Process(events)
			total = acc.Total
		} else {
			det := rt.EnableRaceDetection()
			rt.Process(events)
			total = det.Acc.Total
		}
		if rt.Threads() != 41 {
			t.Errorf("%s: Threads() = %d, want 41", order, rt.Threads())
		}
		if order == "hb" && total != 2 {
			// w0-w40 (write-write) and w40-r3 (write-read): the
			// FastTrack detector checks reads against the last write.
			t.Errorf("hb: %d races, want 2", total)
		}
	}
}

// TestForkJoinAcrossGrowth checks fork targets create and order the
// child thread correctly when the child id triggers growth.
func TestForkJoinAcrossGrowth(t *testing.T) {
	tr, err := trace.ParseTextString(`
t0 w x0
t0 fork t1
t1 r x0
t0 join t1
t0 w x0
`)
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.New[*core.TreeClock](hb.NewSemantics[*core.TreeClock](), core.Factory(nil))
	det := rt.EnableRaceDetection()
	rt.Process(tr.Events)
	if det.Acc.Total != 0 {
		t.Errorf("fork/join-ordered accesses flagged racy: %v", det.Acc.Samples)
	}
	got := rt.Timestamp(0, vt.NewVector(rt.Threads()))
	if !got.Equal(vt.Vector{4, 1}) { // t0: w, fork, join, w; knows t1@1
		t.Errorf("final t0 timestamp %v, want [4, 1]", got)
	}
}

// TestProcessSourceConsumptionModes runs one trace through every
// consumption mode of ProcessSource — per-event scalar, caller-buffer
// batches (via the in-memory replayer) and the pipelined zero-copy
// producer — and checks the final timestamps are identical.
func TestProcessSourceConsumptionModes(t *testing.T) {
	tr := gen.Mixed(gen.Config{Name: "modes", Threads: 8, Locks: 4, Vars: 32, Events: 4000, Seed: 9, SyncFrac: 0.3})
	for _, order := range orders {
		ref := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		ref.Process(tr.Events)

		scalar := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		if err := scalar.ProcessScalar(trace.NewReplayer(tr)); err != nil {
			t.Fatalf("%s: scalar: %v", order, err)
		}
		batched := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		if err := batched.ProcessSource(trace.NewReplayer(tr)); err != nil {
			t.Fatalf("%s: batched: %v", order, err)
		}
		smallBuf := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		if err := smallBuf.ProcessBatches(trace.NewReplayer(tr), make([]trace.Event, 7)); err != nil {
			t.Fatalf("%s: small buffer: %v", order, err)
		}
		piped := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
		p := trace.NewPipeline(trace.NewReplayer(tr), 3, 64)
		if err := piped.ProcessSource(p); err != nil {
			t.Fatalf("%s: pipelined: %v", order, err)
		}
		p.Close()

		k := tr.Meta.Threads
		for _, rt := range []*engine.Runtime[*core.TreeClock]{scalar, batched, smallBuf, piped} {
			if rt.Events() != uint64(tr.Len()) {
				t.Fatalf("%s: processed %d events, want %d", order, rt.Events(), tr.Len())
			}
			for th := 0; th < rt.Threads(); th++ {
				got := rt.Timestamp(vt.TID(th), vt.NewVector(k))
				want := ref.Timestamp(vt.TID(th), vt.NewVector(k))
				if !got.Equal(want) {
					t.Fatalf("%s: thread %d: %v, want %v", order, th, got, want)
				}
			}
		}
	}
}

// TestRuntimeLockPaths pins the runtime's uniform dispatch on the
// degenerate lock shapes the streaming engines must tolerate (streams
// are analyzed without prior validation unless the caller opts in):
// an acquire of a lock that is never released, and a release of a lock
// that was never acquired. The behavior is defined by the dispatch
// rules alone — acquire joins C_ℓ (zero for an untouched lock),
// release overwrites C_ℓ — and must be identical for both clock data
// structures.
func TestRuntimeLockPaths(t *testing.T) {
	t.Run("acquire-never-released", func(t *testing.T) {
		// t0's critical section never closes; t1's acquire of the same
		// lock joins the zero lock clock, so no cross-thread edge forms
		// and the writes race.
		events := []trace.Event{
			{T: 0, Obj: 0, Kind: trace.Acquire},
			{T: 0, Obj: 0, Kind: trace.Write},
			{T: 1, Obj: 0, Kind: trace.Acquire},
			{T: 1, Obj: 0, Kind: trace.Write},
		}
		tcRT := newRuntime[*core.TreeClock](t, "hb", core.Factory(nil))
		tcDet := tcRT.EnableRaceDetection()
		tcRT.Process(events)
		vcRT := newRuntime[*vc.VectorClock](t, "hb", vc.Factory(nil))
		vcDet := vcRT.EnableRaceDetection()
		vcRT.Process(events)
		for name, det := range map[string]uint64{"tree": tcDet.Acc.Total, "vc": vcDet.Acc.Total} {
			if det != 1 {
				t.Errorf("%s: races = %d, want 1 (no release, no ordering)", name, det)
			}
		}
		want := []vt.Vector{{2, 0}, {0, 2}}
		for th := 0; th < 2; th++ {
			got := tcRT.Timestamp(vt.TID(th), vt.NewVector(2))
			if !got.Equal(want[th]) {
				t.Errorf("tree: thread %d timestamp %v, want %v", th, got, want[th])
			}
			if !vcRT.Timestamp(vt.TID(th), vt.NewVector(2)).Equal(want[th]) {
				t.Errorf("vc: thread %d timestamp diverges from pinned %v", th, want[th])
			}
		}
	})

	t.Run("release-without-acquire", func(t *testing.T) {
		// The unmatched release still publishes t0's clock into C_ℓ, so
		// t1's later acquire does pick up an edge. This is the defined
		// (if meaningless) semantics for malformed streams; validation
		// is the caller's opt-in.
		events := []trace.Event{
			{T: 0, Obj: 0, Kind: trace.Write},
			{T: 0, Obj: 0, Kind: trace.Release},
			{T: 1, Obj: 0, Kind: trace.Acquire},
			{T: 1, Obj: 0, Kind: trace.Write},
		}
		rt := newRuntime[*core.TreeClock](t, "hb", core.Factory(nil))
		det := rt.EnableRaceDetection()
		rt.Process(events)
		if det.Acc.Total != 0 {
			t.Errorf("races = %d, want 0 (release published the clock)", det.Acc.Total)
		}
		if got := rt.Timestamp(1, vt.NewVector(2)); !got.Equal(vt.Vector{2, 2}) {
			t.Errorf("t1 timestamp %v, want [2, 2]", got)
		}
	})

	t.Run("fork-join-interleaved-with-locks", func(t *testing.T) {
		// The child is forked while the parent holds a lock; the child
		// releases nothing but its write is ordered by the fork edge,
		// and the parent's post-join read is ordered by the join edge.
		tr, err := trace.ParseTextString(`
t0 acq l0
t0 fork t1
t1 w x0
t1 acq l1
t1 rel l1
t0 rel l0
t0 join t1
t0 r x0
`)
		if err != nil {
			t.Fatal(err)
		}
		for _, order := range orders {
			rt := newRuntime[*core.TreeClock](t, order, core.Factory(nil))
			var total uint64
			if order == "maz" {
				acc := rt.EnableAnalysis()
				rt.Process(tr.Events)
				total = acc.Total
			} else {
				det := rt.EnableRaceDetection()
				rt.Process(tr.Events)
				total = det.Acc.Total
			}
			if total != 0 {
				t.Errorf("%s: fork/join-ordered accesses flagged: %d", order, total)
			}
			if got := rt.Timestamp(0, vt.NewVector(2)); !got.Equal(vt.Vector{5, 3}) {
				t.Errorf("%s: t0 timestamp %v, want [5, 3]", order, got)
			}
		}
	})
}

// hookRecorder records the order and arguments of every optional-hook
// invocation, proving the runtime detects the extension interfaces and
// calls them after its uniform handling (ct already carries the
// event's timestamp).
type hookRecorder[C vt.Clock[C]] struct {
	calls []string
}

func (h *hookRecorder[C]) Read(rt *engine.Runtime[C], t vt.TID, x int32, ct C)  {}
func (h *hookRecorder[C]) Write(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {}

func (h *hookRecorder[C]) Acquire(rt *engine.Runtime[C], t vt.TID, l int32, ct C) {
	h.calls = append(h.calls, fmt.Sprintf("acq t%d l%d @%d", t, l, ct.Get(t)))
}
func (h *hookRecorder[C]) Release(rt *engine.Runtime[C], t vt.TID, l int32, ct C) {
	h.calls = append(h.calls, fmt.Sprintf("rel t%d l%d @%d", t, l, ct.Get(t)))
}
func (h *hookRecorder[C]) Fork(rt *engine.Runtime[C], t vt.TID, u vt.TID, ct C) {
	h.calls = append(h.calls, fmt.Sprintf("fork t%d t%d @%d", t, u, ct.Get(t)))
}
func (h *hookRecorder[C]) Join(rt *engine.Runtime[C], t vt.TID, u vt.TID, ct C) {
	h.calls = append(h.calls, fmt.Sprintf("join t%d t%d @%d", t, u, ct.Get(t)))
}

// TestOptionalHooksDispatch drives every sync event kind through a
// plugin implementing both extension interfaces and checks each hook
// fires exactly once, in trace order, with the event's own local time.
func TestOptionalHooksDispatch(t *testing.T) {
	rec := &hookRecorder[*vc.VectorClock]{}
	rt := engine.New[*vc.VectorClock](rec, vc.Factory(nil))
	tr, err := trace.ParseTextString(`
t0 acq l0
t0 fork t1
t1 w x0
t0 rel l0
t0 join t1
`)
	if err != nil {
		t.Fatal(err)
	}
	rt.Process(tr.Events)
	want := []string{
		"acq t0 l0 @1",
		"fork t0 t1 @2",
		"rel t0 l0 @3",
		"join t0 t1 @4",
	}
	if len(rec.calls) != len(want) {
		t.Fatalf("hook calls = %v, want %v", rec.calls, want)
	}
	for i := range want {
		if rec.calls[i] != want[i] {
			t.Errorf("call %d = %q, want %q", i, rec.calls[i], want[i])
		}
	}
}

// TestHooksNotDetectedForPlainSemantics double-checks the baseline
// plugins keep the fast path (no extension interfaces satisfied).
func TestHooksNotDetectedForPlainSemantics(t *testing.T) {
	var s any = hb.NewSemantics[*vc.VectorClock]()
	if _, ok := s.(engine.LockSemantics[*vc.VectorClock]); ok {
		t.Error("hb semantics unexpectedly implements LockSemantics")
	}
	var m any = maz.NewSemantics[*vc.VectorClock]()
	if _, ok := m.(engine.ThreadSemantics[*vc.VectorClock]); ok {
		t.Error("maz semantics unexpectedly implements ThreadSemantics")
	}
}
