package engine

// Thread-slot reclamation: the fix for the third unbounded dimension of
// a streaming run. Clock capacity k normally grows with every thread
// the trace ever forked, so a month-long stream that churns through
// short-lived threads drags every clock toward Θ(lifetime threads).
// With reclamation enabled the runtime separates the trace's external
// thread ids from the internal clock slots: external ids are remapped
// on entry to Step, and when a thread is joined — the point after which
// no live clock can ever again receive its component through a join —
// its slot is retired and later re-issued to a freshly forked thread,
// so k plateaus at the peak number of concurrently live threads.
//
// # Why retiring a slot is sound
//
// Retirement scrubs the dead thread's clock down to the singleton
// {s: T_u} (T_u is the thread's final local time) by releasing every
// foreign entry (vt.Clock.ReleaseSlot). The foreign entries are dead:
// the joining thread has already absorbed them, and no future event of
// the retired thread exists to publish them again.
//
// Re-issuing slot s to a fresh child forked by f is gated on
//
//	C_f.Get(s) >= T_u
//
// — the forker must already know the dead thread's final time. Because
// knowledge of a thread only ever originates from that thread's own
// clock, C_f.Get(s) = T_u means C_f sits above the dead thread's final
// clock in the partial order, i.e. C_f dominates everything the dead
// thread ever knew. The new occupant's times then continue the slot's
// scale: its clock starts at {s: T_u} ⊔ C_f, its first increment makes
// T_u+1, and every slot-s entry w in any clock decomposes as the pair
//
//	(dead thread's component:  min(w, T_u),
//	 new thread's component:   max(0, w-T_u))
//
// Both directions of this translation are monotone, so every pointwise
// clock comparison the HB/SHB/MAZ analyses make is isomorphic to the
// unreclaimed run's: the same races are reported (reported thread ids
// are internal slots, not trace ids). A never-acted thread (T_u = 0)
// passes the gate trivially, and soundly: no clock anywhere holds a
// nonzero entry for it, so its slot carries no trace of the old era.
//
// The gate is what excludes weak orders: WCP's rule-(b) ordering check
// treats equal slots as the same thread, but fork/join edges are HB
// edges, not WCP edges, so the domination argument above does not carry
// over — EnableSlotReclaim rejects plugins with thread hooks and WCP
// bounds its state by summary aging instead (internal/wcp).
//
// # The recycled-fork sequence
//
// For a tree clock the child's clock cannot simply join the forker:
// the forker still carries the dead era's slot-s entry, and a receiver
// that already knows s at T_u would trip the tree's pruning rules over
// entries it does not honestly hold. The runtime therefore forks a
// recycled slot in three contract-level steps (forkRecycled):
//
//	C_f.ReleaseSlot(s)      — strip the dead era's entry; s's subtree
//	                          splices to s's parent, values intact
//	C_child.Join(C_f)       — the scrubbed singleton {s: T_u} absorbs
//	                          the forker; s is absent from the source,
//	                          so no pruning rule misfires
//	C_f.Join(C_child)       — the forker re-learns s at T_u (the
//	                          child's root), restoring its exact
//	                          pre-fork vector time
//
// Each step preserves the tree-clock invariants (descending-aclk child
// lists and honest provenance), and the net effect on represented
// vector times is exactly the uniform fork path's under the era
// translation above.
//
// # Remapping rules
//
//   - A forked child gets the lowest retired slot passing the gate, or
//     a fresh slot when none qualifies.
//   - A spontaneous thread (first seen by its own event, no fork edge)
//     always gets a fresh slot: with no forker there is no domination
//     evidence, so re-issuing a used slot could conflate eras.
//   - Join retires the slot after the event is processed and forgets
//     the external id; if the trace later names that external id again
//     (a double join), it is treated as a fresh spontaneous thread,
//     which joins as a zero clock — a no-op, exactly like re-joining an
//     already-absorbed thread in the unreclaimed run.
//
// The remapping is deterministic (it depends only on the event prefix),
// so sharded parallel replicas (internal/parallel) stay in lockstep.

import (
	"fmt"
	"sort"

	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// slotTable is the external-id → internal-slot remapping state.
type slotTable struct {
	extern  map[vt.TID]vt.TID // live external thread id → slot
	free    []vt.TID          // retired slots, ascending
	next    vt.TID            // lowest never-issued slot
	retired uint64            // slots retired over the run
	reused  uint64            // retired slots re-issued to new threads
}

// EnableSlotReclaim turns on thread-slot reclamation. It must be called
// before any event is processed, and fails for semantics plugins that
// implement ThreadSemantics: their fork/join hooks see per-thread state
// whose ordering rules are not closed under the HB-only domination
// argument slot reuse relies on (see the package comment above — WCP is
// the motivating case, and bounds its state by summary aging instead).
func (r *Runtime[C]) EnableSlotReclaim() error {
	if r.threadSem != nil {
		return fmt.Errorf("engine: slot reclamation is unsupported for semantics %T: thread hooks order fork/join by rules that slot reuse does not preserve", r.sem)
	}
	if r.events > 0 {
		return fmt.Errorf("engine: EnableSlotReclaim must run before any event is processed")
	}
	r.slots = &slotTable{extern: make(map[vt.TID]vt.TID)}
	return nil
}

// SlotReclaimEnabled reports whether thread-slot reclamation is on.
func (r *Runtime[C]) SlotReclaimEnabled() bool { return r.slots != nil }

// slotOf returns the internal slot for external thread id t, issuing a
// fresh slot on first sight (spontaneous threads never recycle).
func (s *slotTable) slotOf(t vt.TID) vt.TID {
	if slot, ok := s.extern[t]; ok {
		return slot
	}
	slot := s.fresh()
	s.extern[t] = slot
	return slot
}

// fresh issues the lowest never-used slot.
func (s *slotTable) fresh() vt.TID {
	slot := s.next
	s.next++
	return slot
}

// remap rewrites ev's external thread ids (T always; Obj for Fork/Join)
// to internal slots. recycled reports that ev is a Fork whose child got
// a retired slot (Step then runs forkRecycled instead of the uniform
// join), and retire names the slot to retire after the event is
// processed (vt.None otherwise).
func (r *Runtime[C]) remap(ev trace.Event) (out trace.Event, recycled bool, retire vt.TID) {
	s := r.slots
	retire = vt.None
	ev.T = s.slotOf(ev.T)
	switch ev.Kind {
	case trace.Fork:
		u := vt.TID(ev.Obj)
		slot, ok := s.extern[u]
		if !ok {
			slot, recycled = r.forkSlot(ev.T)
			s.extern[u] = slot
		}
		ev.Obj = int32(slot)
	case trace.Join:
		u := vt.TID(ev.Obj)
		slot, ok := s.extern[u]
		if !ok {
			// Joining a never-seen (or already-joined) id: treat it as
			// a fresh thread with the zero clock — the join is a no-op.
			slot = s.fresh()
		} else {
			delete(s.extern, u)
		}
		ev.Obj = int32(slot)
		retire = slot
	}
	return ev, recycled, retire
}

// forkSlot picks the slot for a newly forked child of f: the lowest
// retired slot whose final time the forker already dominates (the
// soundness gate — see the package comment), or a fresh slot.
func (r *Runtime[C]) forkSlot(f vt.TID) (slot vt.TID, recycled bool) {
	s := r.slots
	for i, cand := range s.free {
		tu := r.threads[cand].Get(cand)
		var fv vt.Time
		if int(f) < len(r.threads) {
			fv = r.threads[f].Get(cand)
		}
		if fv >= tu {
			s.free = append(s.free[:i], s.free[i+1:]...)
			s.reused++
			return cand, true
		}
	}
	return s.fresh(), false
}

// forkRecycled installs the forker's knowledge into the recycled slot
// u's clock and restores the forker's own view of u — the three-step
// sequence documented in the package comment. ct is the forker's clock
// (already incremented for the fork event).
func (r *Runtime[C]) forkRecycled(ct C, u vt.TID) {
	cu := r.threads[u] // scrubbed singleton {u: T_u}
	ct.ReleaseSlot(u)
	cu.Join(ct)
	ct.Join(cu)
}

// retireSlot scrubs the joined thread's clock down to the singleton
// holding its own final time and parks the slot on the free list.
func (r *Runtime[C]) retireSlot(s vt.TID) {
	c := r.threads[s]
	for x := 0; x < len(r.threads); x++ {
		if vt.TID(x) != s {
			c.ReleaseSlot(vt.TID(x))
		}
	}
	tbl := r.slots
	i := sort.Search(len(tbl.free), func(i int) bool { return tbl.free[i] >= s })
	tbl.free = append(tbl.free, 0)
	copy(tbl.free[i+1:], tbl.free[i:])
	tbl.free[i] = s
	tbl.retired++
}
