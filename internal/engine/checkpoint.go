package engine

// Checkpoint/restore for the shared runtime (see internal/ckpt for the
// wire format). The runtime serializes everything it owns — the
// per-thread and per-lock clocks, the event and identifier counters,
// and the attached detector/accumulator — and then hands the stream to
// the semantics plugin, which appends its own sections. Restore
// mirrors the order exactly. Shard predicates (analysis.SetShard) are
// runtime configuration, not analysis state: the caller re-binds them
// when it reconstructs the engine, before calling Restore.
//
// A restored runtime is crash-equivalent: its reports, timestamps and
// retained-state accounting are byte-identical to the uninterrupted
// run's from the checkpointed event onward (pinned by the root-level
// crash-equivalence harness). On any error the runtime may be left
// partially overwritten and must be discarded.

import (
	"fmt"
	"io"
	"sort"

	"treeclock/internal/ckpt"
	"treeclock/internal/vt"
)

// CheckpointSemantics is the checkpoint/restore extension of Semantics:
// plugins that support crash-safe analysis serialize their full state
// into a writer (as internal/ckpt sections) and restore it from a
// reader. The runtime detects the extension once at construction, like
// LockSemantics and MemReporter; Runtime.Snapshot fails cleanly for
// plugins without it.
type CheckpointSemantics[C vt.Clock[C]] interface {
	Semantics[C]
	// Snapshot serializes the plugin's complete state into w. rt is the
	// runtime the plugin is bound to (identifier spaces, clocks).
	Snapshot(rt *Runtime[C], w io.Writer) error
	// Restore replaces the plugin's state with one written by Snapshot.
	// It must run on a freshly constructed plugin bound to rt, returns
	// errors wrapping ckpt.ErrCorrupt for malformed input, and never
	// panics.
	Restore(rt *Runtime[C], r io.Reader) error
}

// Checkpointable reports whether the bound semantics plugin supports
// checkpoint/restore.
func (r *Runtime[C]) Checkpointable() bool { return r.ckptSem != nil }

// Snapshot serializes the runtime's complete analysis state — clocks,
// counters, detector/accumulator, plugin state — into w.
func (r *Runtime[C]) Snapshot(w io.Writer) error {
	if r.ckptSem == nil {
		return fmt.Errorf("engine: semantics %T does not support checkpointing", r.sem)
	}
	e := ckpt.NewEnc(w)
	e.Begin("engine")
	e.String(r.name)
	e.Uvarint(uint64(r.vars))
	e.U64(r.events)
	e.Uvarint(uint64(len(r.threads)))
	for _, c := range r.threads {
		c.Save(e)
	}
	e.Uvarint(uint64(len(r.locks)))
	for l := range r.locks {
		e.Bool(r.lockSet[l])
		if r.lockSet[l] {
			r.locks[l].Save(e)
		}
	}
	e.Bool(r.slots != nil)
	if s := r.slots; s != nil {
		e.Uvarint(uint64(s.next))
		e.U64(s.retired)
		e.U64(s.reused)
		e.Uvarint(uint64(len(s.free)))
		for _, f := range s.free {
			e.Uvarint(uint64(f))
		}
		ext := make([]vt.TID, 0, len(s.extern))
		for u := range s.extern {
			ext = append(ext, u)
		}
		sort.Slice(ext, func(i, j int) bool { return ext[i] < ext[j] })
		e.Uvarint(uint64(len(ext)))
		for _, u := range ext {
			e.Uvarint(uint64(u))
			e.Uvarint(uint64(s.extern[u]))
		}
	}
	e.End()
	e.Begin("analysis")
	e.Bool(r.det != nil)
	e.Bool(r.acc != nil)
	if r.det != nil {
		r.det.Save(e) // includes its accumulator
	} else if r.acc != nil {
		r.acc.Save(e)
	}
	e.End()
	if err := e.Err(); err != nil {
		return err
	}
	return r.ckptSem.Snapshot(r, w)
}

// Restore replaces the runtime's state with one written by Snapshot.
// The runtime must be freshly constructed with the same semantics,
// clock type and analysis configuration (EnableRaceDetection /
// EnableAnalysis) as the run that produced the checkpoint; a mismatch
// is reported as corruption. On error the runtime must be discarded.
func (r *Runtime[C]) Restore(rd io.Reader) error {
	if r.ckptSem == nil {
		return fmt.Errorf("engine: semantics %T does not support checkpointing", r.sem)
	}
	d := ckpt.NewDec(rd)
	d.Begin("engine")
	name := d.String()
	vars := d.Count()
	events := d.U64()
	nt := d.Len(1)
	if d.Err() != nil {
		return d.Err()
	}
	threads := make([]C, 0, nt)
	for i := 0; i < nt; i++ {
		c := r.factory(nt)
		c.Load(d)
		if d.Err() != nil {
			return d.Err()
		}
		threads = append(threads, c)
	}
	nl := d.Len(1)
	if d.Err() != nil {
		return d.Err()
	}
	locks := make([]C, nl)
	lockSet := make([]bool, nl)
	for l := 0; l < nl; l++ {
		if d.Bool() {
			c := r.factory(nt)
			c.Load(d)
			if d.Err() != nil {
				return d.Err()
			}
			locks[l], lockSet[l] = c, true
		}
	}
	hasSlots := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasSlots != (r.slots != nil) {
		d.Corruptf("slot-reclamation configuration mismatch (checkpoint %v, engine %v)", hasSlots, r.slots != nil)
		return d.Err()
	}
	var slots *slotTable
	if hasSlots {
		slots = &slotTable{extern: make(map[vt.TID]vt.TID)}
		next := d.Uvarint()
		if next > uint64(vt.MaxID) {
			d.Corruptf("slot high-water mark %d out of range", next)
			return d.Err()
		}
		slots.next = vt.TID(next)
		slots.retired = d.U64()
		slots.reused = d.U64()
		nf := d.Len(1)
		slots.free = make([]vt.TID, 0, nf)
		prev := vt.None
		for i := 0; i < nf; i++ {
			f := d.Uvarint()
			if d.Err() != nil {
				return d.Err()
			}
			if f >= next || vt.TID(f) <= prev {
				d.Corruptf("free slot list entry %d not ascending below %d", f, next)
				return d.Err()
			}
			prev = vt.TID(f)
			slots.free = append(slots.free, vt.TID(f))
		}
		ne := d.Len(2)
		prev = vt.None
		for i := 0; i < ne; i++ {
			u, slot := d.Uvarint(), d.Uvarint()
			if d.Err() != nil {
				return d.Err()
			}
			if u > uint64(vt.MaxID) || vt.TID(u) <= prev || slot >= next {
				d.Corruptf("external thread map entry (%d -> %d) invalid", u, slot)
				return d.Err()
			}
			prev = vt.TID(u)
			slots.extern[vt.TID(u)] = vt.TID(slot)
		}
	}
	d.End()
	d.Begin("analysis")
	hasDet := d.Bool()
	hasAcc := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasDet != (r.det != nil) || hasAcc != (r.acc != nil) {
		d.Corruptf("analysis configuration mismatch (checkpoint det=%v acc=%v, engine det=%v acc=%v)",
			hasDet, hasAcc, r.det != nil, r.acc != nil)
		return d.Err()
	}
	if r.det != nil {
		r.det.Load(d)
	} else if r.acc != nil {
		r.acc.Load(d)
	}
	d.End()
	if err := d.Err(); err != nil {
		return err
	}
	r.name, r.vars, r.events = name, vars, events
	r.threads, r.locks, r.lockSet = threads, locks, lockSet
	if hasSlots {
		r.slots = slots
	}
	return r.ckptSem.Restore(r, rd)
}
