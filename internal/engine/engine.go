// Package engine is the shared runtime for the streaming partial-order
// engines (the paper's Algorithms 1/3/4/5). It owns everything the HB,
// SHB and Mazurkiewicz analyses have in common — per-thread and per-lock
// clock state, the Acquire/Release/Fork/Join dispatch, the per-event
// local-time increment (footnote 1), event counting, timestamps, and
// lazy per-object allocation — and delegates only the read/write
// semantics to a small Semantics plugin. Instantiating the runtime with
// a different Semantics yields a different partial order; instantiating
// it with a different vt.Clock yields the tree-clock or vector-clock
// variant. The partial-order packages (internal/hb, internal/shb,
// internal/maz, internal/wcp) are therefore reduced to plugins plus a
// constructor.
//
// Orders that depend on more than read/write structure opt into the
// extension interfaces: LockSemantics adds Acquire/Release hooks (per-
// lock critical-section history, release-ordering rules) and
// ThreadSemantics adds Fork/Join hooks. The runtime detects both once
// at construction and calls the hooks after its own uniform handling
// of the event, so plugins observe the event's final timestamp and the
// plain Read/Write-only plugins run exactly as before.
//
// The runtime is streaming end to end: it needs no trace.Meta. Thread,
// lock and variable state is allocated (and clocks are grown, see the
// Grow contract in internal/core) on first sight of an identifier, so a
// trace can be fed event by event from a reader of unbounded length.
// The runtime's own memory is proportional to the live identifier
// spaces only; a Semantics plugin that must retain event-dependent
// state (WCP's critical-section histories) is responsible for bounding
// it — internal/wcp compacts its per-lock histories as rule-(b)
// cursors pass them — and reports what it retains through the
// MemReporter extension so the bound is measurable and testable.
package engine

import (
	"treeclock/internal/analysis"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// Semantics is the per-partial-order plugin: it defines what a read and
// a write of a shared variable mean for the order being computed. All
// other event kinds are handled uniformly by the runtime. Hooks run
// after the thread's local-time increment, with ct the thread's clock
// (the event's timestamp is ct when the hook returns). Implementations
// keep any extra per-variable state (last-write clocks, read sets) and
// must grow it on first sight of an identifier, mirroring the runtime.
type Semantics[C vt.Clock[C]] interface {
	// Read handles op = r(x) by thread t.
	Read(rt *Runtime[C], t vt.TID, x int32, ct C)
	// Write handles op = w(x) by thread t.
	Write(rt *Runtime[C], t vt.TID, x int32, ct C)
}

// LockSemantics is an optional extension of Semantics for partial
// orders that cannot be expressed through read/write hooks alone
// because they depend on critical-section structure (which events ran
// under which lock, and how releases order against each other). The
// runtime detects the extension once at construction; plugins that do
// not implement it (HB, SHB, MAZ) are dispatched exactly as before.
//
// Both hooks run after the runtime's uniform lock handling, so when
// Acquire is called ct has already joined the lock's clock C_ℓ, and
// when Release is called C_ℓ has already been overwritten with ct.
// ct therefore carries the event's own timestamp (its local entry is
// the event's local time), which is what release-ordering rules such
// as WCP's rule (b) need to snapshot.
type LockSemantics[C vt.Clock[C]] interface {
	Semantics[C]
	// Acquire handles op = acq(l) by thread t.
	Acquire(rt *Runtime[C], t vt.TID, l int32, ct C)
	// Release handles op = rel(l) by thread t.
	Release(rt *Runtime[C], t vt.TID, l int32, ct C)
}

// MemStats is a snapshot of the per-run state a Semantics plugin
// retains beyond the live identifier spaces — the state the streaming
// memory contract is about. Plain plugins (HB, SHB, MAZ) keep only
// O(threads + locks + variables) clocks and report nothing; plugins
// with event-dependent state (WCP's critical-section histories)
// implement MemReporter so soak tests and the tcbench mem experiment
// can assert and track the retained-state bound.
type MemStats struct {
	// HistEntries is the number of live critical-section history
	// entries across all locks.
	HistEntries int
	// PeakLockHist is the high-water mark of a single lock's history
	// length over the run — the quantity history compaction bounds.
	PeakLockHist int
	// DroppedEntries counts history entries reclaimed by compaction.
	DroppedEntries uint64
	// RetainedBytes approximates the bytes pinned by retained
	// snapshots, cursors and summaries (8 bytes per vector entry plus
	// small per-object constants; map overhead is not counted).
	RetainedBytes uint64
	// SummaryVectors is the number of rule-(a)-style summary vectors
	// retained (bounded by live (lock, variable, thread) triples).
	SummaryVectors int
	// FreeVectors is the number of recycled snapshot vectors parked in
	// the plugin's free list awaiting reuse.
	FreeVectors int
	// SummaryEvictions counts rule-(a) summary vectors dropped by the
	// aging sweep (internal/wcp, SetSummaryCap) over the run.
	SummaryEvictions uint64

	// ThreadSlots is the number of internal clock slots ever issued —
	// the effective clock capacity k. With slot reclamation off it
	// equals the number of threads the trace ever named; with it on it
	// plateaus at the peak number of concurrently live threads (plus
	// retired slots whose reuse the soundness gate rejected).
	ThreadSlots int
	// FreeSlots is the number of retired slots awaiting reuse.
	FreeSlots int
	// RetiredSlots / ReusedSlots count slot retirements and re-issues
	// over the run (reclamation only; zero otherwise).
	RetiredSlots uint64
	ReusedSlots  uint64

	// InternedNames / InternEvictions report the text scanner's
	// identifier interner when an intern cap is set (RunStream fills
	// them in; the runtime itself never sees the scanner).
	InternedNames   int
	InternEvictions uint64
}

// MemReporter is an optional extension of Semantics: plugins that
// retain per-run state beyond the live identifier spaces report it for
// accounting. The runtime detects the extension once at construction,
// like LockSemantics, and surfaces it through Runtime.MemStats (and
// from there through RunStream's StreamResult).
type MemReporter interface {
	// MemStats reports the plugin's currently retained state. It may
	// walk the retained structures (O(retained state), not O(1)), so
	// callers should treat it as a reporting call, not a hot-path one.
	MemStats() MemStats
}

// ThreadSemantics is the fork/join counterpart of LockSemantics:
// plugins that maintain order-specific per-thread state (WCP's
// weak-order clocks) observe thread creation and joining through it.
// The hooks run after the runtime's uniform handling — at Fork the
// child's clock has already joined ct, at Join ct has already joined
// the child's clock — and u names the other thread (the forked child,
// or the thread joined on).
type ThreadSemantics[C vt.Clock[C]] interface {
	Semantics[C]
	// Fork handles op = fork(u) by thread t.
	Fork(rt *Runtime[C], t vt.TID, u vt.TID, ct C)
	// Join handles op = join(u) by thread t.
	Join(rt *Runtime[C], t vt.TID, u vt.TID, ct C)
}

// Runtime computes a partial order over a streamed trace. Per thread t
// it maintains the clock C_t; per lock ℓ the clock C_ℓ holding the
// timestamp of ℓ's last release. Reads and writes are delegated to the
// Semantics plugin.
type Runtime[C vt.Clock[C]] struct {
	sem Semantics[C]
	// lockSem / threadSem are non-nil when sem implements the optional
	// extension interfaces; detected once so Step pays one nil check
	// per sync event instead of a type assertion.
	lockSem   LockSemantics[C]
	threadSem ThreadSemantics[C]
	memRep    MemReporter
	ckptSem   CheckpointSemantics[C]
	slots     *slotTable // non-nil when slot reclamation is on (slots.go)
	factory   vt.Factory[C]
	threads   []C
	locks     []C
	lockSet   []bool // locks[l] allocated
	det       *analysis.Detector[C]
	acc       *analysis.Accumulator
	events    uint64
	vars      int // variable-id high-water mark (for Meta reporting)
	name      string
}

// New returns a dynamically growing runtime: it assumes nothing about
// the trace's identifier spaces and allocates state on first sight.
func New[C vt.Clock[C]](sem Semantics[C], factory vt.Factory[C]) *Runtime[C] {
	r := &Runtime[C]{sem: sem, factory: factory}
	if ls, ok := sem.(LockSemantics[C]); ok {
		r.lockSem = ls
	}
	if ts, ok := sem.(ThreadSemantics[C]); ok {
		r.threadSem = ts
	}
	if mr, ok := sem.(MemReporter); ok {
		r.memRep = mr
	}
	if cs, ok := sem.(CheckpointSemantics[C]); ok {
		r.ckptSem = cs
	}
	return r
}

// MemStats reports the semantics plugin's retained-state accounting,
// when the plugin implements the MemReporter extension, plus the
// runtime's own slot-reclamation accounting when that is enabled; ok
// is false when neither has anything to report (HB, SHB, MAZ with
// reclamation off: state bounded by the live identifier spaces alone).
func (r *Runtime[C]) MemStats() (ms MemStats, ok bool) {
	if r.memRep != nil {
		ms, ok = r.memRep.MemStats(), true
	}
	if r.slots != nil {
		ms.ThreadSlots = int(r.slots.next)
		ms.FreeSlots = len(r.slots.free)
		ms.RetiredSlots = r.slots.retired
		ms.ReusedSlots = r.slots.reused
		ok = true
	}
	return ms, ok
}

// NewWithMeta returns a runtime pre-sized for a known trace: thread
// clocks are created up front at full capacity, exactly as when
// analyzing a materialized trace. The runtime still grows past the
// metadata if the trace turns out larger.
func NewWithMeta[C vt.Clock[C]](sem Semantics[C], factory vt.Factory[C], meta trace.Meta) *Runtime[C] {
	r := New(sem, factory)
	r.name = meta.Name
	r.vars = meta.Vars
	r.growThreads(meta.Threads)
	r.growLocks(meta.Locks)
	return r
}

// growThreads extends the thread space to n, creating and initializing
// a clock for each new thread at the current capacity.
func (r *Runtime[C]) growThreads(n int) {
	for len(r.threads) < n {
		t := vt.TID(len(r.threads))
		c := r.factory(n)
		c.Init(t)
		r.threads = append(r.threads, c)
	}
}

// growLocks extends the lock space to n; lock clocks themselves are
// allocated on first use (many locks in real traces are touched by a
// single thread or never at all).
func (r *Runtime[C]) growLocks(n int) {
	for len(r.locks) < n {
		var zero C
		r.locks = append(r.locks, zero)
		r.lockSet = append(r.lockSet, false)
	}
}

// lock returns lock l's clock, allocating it on first sight.
func (r *Runtime[C]) lock(l int32) C {
	if int(l) >= len(r.locks) {
		r.growLocks(int(l) + 1)
	}
	if !r.lockSet[l] {
		r.locks[l] = r.factory(len(r.threads))
		r.lockSet[l] = true
	}
	return r.locks[l]
}

// NewClock hands semantics plugins a fresh auxiliary clock (zero vector
// time) at the runtime's current thread capacity, sharing the factory's
// work-stats sink.
func (r *Runtime[C]) NewClock() C { return r.factory(len(r.threads)) }

// Threads returns the number of threads seen so far.
func (r *Runtime[C]) Threads() int { return len(r.threads) }

// Meta reports the identifier spaces seen so far (streaming runs) or
// declared up front (NewWithMeta), whichever is larger.
func (r *Runtime[C]) Meta() trace.Meta {
	return trace.Meta{Name: r.name, Threads: len(r.threads), Locks: len(r.locks), Vars: r.vars}
}

// EnableRaceDetection attaches a FastTrack-style detector (the
// "+Analysis" configuration of HB and SHB) and returns it. Without it,
// read and write events reach the Semantics plugin only, matching the
// pure partial-order computation the paper times as "HB"/"SHB".
func (r *Runtime[C]) EnableRaceDetection() *analysis.Detector[C] {
	r.det = analysis.NewDetector[C](len(r.threads), r.vars)
	r.acc = r.det.Acc
	return r.det
}

// EnableAnalysis attaches a bare accumulator, for semantics (MAZ) that
// perform their own pair checks and only need a place to report them.
func (r *Runtime[C]) EnableAnalysis() *analysis.Accumulator {
	r.acc = analysis.NewAccumulator()
	return r.acc
}

// Detector returns the attached race detector, or nil.
func (r *Runtime[C]) Detector() *analysis.Detector[C] { return r.det }

// Analysis returns the attached accumulator (the detector's, when race
// detection is enabled), or nil.
func (r *Runtime[C]) Analysis() *analysis.Accumulator { return r.acc }

// Step processes one event.
func (r *Runtime[C]) Step(ev trace.Event) {
	var recycled bool
	retire := vt.None
	if r.slots != nil {
		ev, recycled, retire = r.remap(ev)
	}
	t := ev.T
	if int(t) >= len(r.threads) {
		r.growThreads(int(t) + 1)
	}
	ct := r.threads[t]
	ct.Inc(t, 1)
	switch ev.Kind {
	case trace.Acquire:
		ct.Join(r.lock(ev.Obj))
		if r.lockSem != nil {
			r.lockSem.Acquire(r, t, ev.Obj, ct)
		}
	case trace.Release:
		// Lemma 2: C_ℓ ⊑ C_t holds here, so the copy is monotone.
		r.lock(ev.Obj).MonotoneCopy(ct)
		if r.lockSem != nil {
			r.lockSem.Release(r, t, ev.Obj, ct)
		}
	case trace.Read:
		if int(ev.Obj) >= r.vars {
			r.vars = int(ev.Obj) + 1
		}
		r.sem.Read(r, t, ev.Obj, ct)
	case trace.Write:
		if int(ev.Obj) >= r.vars {
			r.vars = int(ev.Obj) + 1
		}
		r.sem.Write(r, t, ev.Obj, ct)
	case trace.Fork:
		// The child inherits the parent's knowledge.
		if int(ev.Obj) >= len(r.threads) {
			r.growThreads(int(ev.Obj) + 1)
		}
		if recycled {
			r.forkRecycled(ct, vt.TID(ev.Obj))
		} else {
			r.threads[ev.Obj].Join(ct)
		}
		if r.threadSem != nil {
			r.threadSem.Fork(r, t, vt.TID(ev.Obj), ct)
		}
	case trace.Join:
		if int(ev.Obj) >= len(r.threads) {
			r.growThreads(int(ev.Obj) + 1)
		}
		ct.Join(r.threads[ev.Obj])
		if r.threadSem != nil {
			r.threadSem.Join(r, t, vt.TID(ev.Obj), ct)
		}
	}
	r.events++
	if retire != vt.None {
		r.retireSlot(retire)
	}
}

// Process runs a whole event slice through Step.
func (r *Runtime[C]) Process(events []trace.Event) {
	for i := range events {
		r.Step(events[i])
	}
}

// ProcessSource drains a streaming event source through Step in one
// pass, returning the source's error, if any. Sources that support
// batch delivery are consumed in batches (interface dispatch and the
// streaming-loop overhead amortize to once per trace.DefaultBatchSize
// events instead of once per event); a pipelined decoder's own buffers
// are consumed zero-copy. Use ProcessScalar to force the per-event
// path.
func (r *Runtime[C]) ProcessSource(src trace.EventSource) error {
	switch s := src.(type) {
	case trace.BatchProducer:
		return r.processProducer(s)
	case trace.BatchSource:
		return r.ProcessBatches(s, make([]trace.Event, trace.DefaultBatchSize))
	default:
		return r.ProcessScalar(src)
	}
}

// ProcessScalar drains src one Next call per event — the pre-batching
// streaming loop, kept for comparison benchmarks and as the fallback
// for sources without batch support.
func (r *Runtime[C]) ProcessScalar(src trace.EventSource) error {
	for {
		ev, ok := src.Next()
		if !ok {
			return src.Err()
		}
		r.Step(ev)
	}
}

// ProcessBatches drains a batch source through Step using the
// caller-owned buffer buf (sized to trace.DefaultBatchSize when empty),
// so the interface call, its bounds checks and the loop dispatch run
// once per batch rather than once per event.
func (r *Runtime[C]) ProcessBatches(src trace.BatchSource, buf []trace.Event) error {
	if len(buf) == 0 {
		buf = make([]trace.Event, trace.DefaultBatchSize)
	}
	for {
		n, ok := src.NextBatch(buf)
		for i := 0; i < n; i++ {
			r.Step(buf[i])
		}
		if !ok {
			return src.Err()
		}
	}
}

// ProcessBatchAt steps a batch whose first event sits at global trace
// position base, stamping each event's position into the attached
// accumulator first. It is the sharded-worker entry point
// (internal/parallel): position stamps let per-shard race samples be
// merged back into trace order (analysis.MergeAccumulators), and the
// per-batch granularity matches the fan-out transport. Results are
// identical to Step in a loop.
func (r *Runtime[C]) ProcessBatchAt(base uint64, events []trace.Event) {
	if r.acc == nil {
		for i := range events {
			r.Step(events[i])
		}
		return
	}
	for i := range events {
		r.acc.SetPos(base + uint64(i))
		r.Step(events[i])
	}
}

// MergeMemStats combines the retained-state reports of sharded worker
// replicas into one accounting for the whole parallel run. Replicas
// each retain their own copy of the plugin state (clock evolution is
// replicated, only per-variable analysis is sharded), so the additive
// fields — live entries, drops, bytes, summaries, free-list slots —
// sum to the run's true footprint, while PeakLockHist is a per-lock
// high-water mark and takes the maximum. The slot-reclamation fields
// also take the maximum: every replica runs the same deterministic
// remapping over the full event stream, so the slot space is one
// shared shape replicated per worker, not additional footprint.
func MergeMemStats(stats []MemStats) MemStats {
	var out MemStats
	for _, ms := range stats {
		out.HistEntries += ms.HistEntries
		out.DroppedEntries += ms.DroppedEntries
		out.RetainedBytes += ms.RetainedBytes
		out.SummaryVectors += ms.SummaryVectors
		out.FreeVectors += ms.FreeVectors
		out.SummaryEvictions += ms.SummaryEvictions
		if ms.PeakLockHist > out.PeakLockHist {
			out.PeakLockHist = ms.PeakLockHist
		}
		if ms.ThreadSlots > out.ThreadSlots {
			out.ThreadSlots = ms.ThreadSlots
		}
		if ms.FreeSlots > out.FreeSlots {
			out.FreeSlots = ms.FreeSlots
		}
		if ms.RetiredSlots > out.RetiredSlots {
			out.RetiredSlots = ms.RetiredSlots
		}
		if ms.ReusedSlots > out.ReusedSlots {
			out.ReusedSlots = ms.ReusedSlots
		}
		if ms.InternedNames > out.InternedNames {
			out.InternedNames = ms.InternedNames
		}
		if ms.InternEvictions > out.InternEvictions {
			out.InternEvictions = ms.InternEvictions
		}
	}
	return out
}

// processProducer consumes a batch-owning source (the pipelined
// decoder) without copying: each acquired buffer is stepped through and
// recycled.
func (r *Runtime[C]) processProducer(src trace.BatchProducer) error {
	for {
		b, ok := src.AcquireBatch()
		if !ok {
			return src.Err()
		}
		for i := range b {
			r.Step(b[i])
		}
		src.ReleaseBatch(b)
	}
}

// Events returns the number of events processed.
func (r *Runtime[C]) Events() uint64 { return r.events }

// ThreadClock exposes thread t's clock (its current timestamp).
func (r *Runtime[C]) ThreadClock(t vt.TID) C { return r.threads[t] }

// Timestamp snapshots thread t's current vector time into dst.
func (r *Runtime[C]) Timestamp(t vt.TID, dst vt.Vector) vt.Vector {
	return r.threads[t].Vector(dst)
}
