// Package stats provides the small numeric helpers the benchmark
// harness uses to aggregate and present results: means, geometric
// means, histogram bucketing and fixed-width formatting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values, or 0 when the
// slice is empty or contains a non-positive value.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min returns the smallest value, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Histogram buckets values by the given upper bounds (the last bucket
// is unbounded). Bounds must be ascending.
type Histogram struct {
	Bounds []float64 // bucket i covers (Bounds[i-1], Bounds[i]]
	Counts []int     // len(Bounds)+1, last bucket is > Bounds[last]
}

// NewHistogram builds a histogram over the bounds and fills it with xs.
func NewHistogram(bounds []float64, xs []float64) *Histogram {
	h := &Histogram{Bounds: bounds, Counts: make([]int, len(bounds)+1)}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add buckets one value.
func (h *Histogram) Add(x float64) {
	for i, b := range h.Bounds {
		if x <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// BucketLabel names bucket i, e.g. "(1, 5]" or "> 80".
func (h *Histogram) BucketLabel(i int) string {
	if i == len(h.Bounds) {
		return fmt.Sprintf("> %g", h.Bounds[len(h.Bounds)-1])
	}
	lo := 0.0
	if i > 0 {
		lo = h.Bounds[i-1]
	}
	return fmt.Sprintf("(%g, %g]", lo, h.Bounds[i])
}

// Bar renders a proportional text bar of at most width characters.
func Bar(count, max, width int) string {
	if max <= 0 || count <= 0 {
		return ""
	}
	n := count * width / max
	if n == 0 {
		n = 1
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
