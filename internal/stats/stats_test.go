package stats

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Error("geomean wrong")
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 {
		t.Error("degenerate geomean must be 0")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 4, 2}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Error("min/max wrong")
	}
	if !almost(Median(xs), 3) {
		t.Errorf("median = %f", Median(xs))
	}
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd median wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 || Median(nil) != 0 {
		t.Error("empty cases must be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10}, []float64{0.5, 1, 3, 7, 100})
	want := []int{2, 1, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.BucketLabel(0) != "(0, 1]" || h.BucketLabel(3) != "> 10" {
		t.Errorf("labels: %q %q", h.BucketLabel(0), h.BucketLabel(3))
	}
}

func TestBar(t *testing.T) {
	if Bar(0, 10, 20) != "" {
		t.Error("zero count must render empty")
	}
	if Bar(10, 10, 20) != "####################" {
		t.Errorf("full bar = %q", Bar(10, 10, 20))
	}
	if Bar(1, 1000, 20) != "#" {
		t.Error("tiny nonzero count must render one mark")
	}
}
