package treeclock_test

import (
	"bytes"
	"fmt"
	"testing"

	"treeclock"
)

func TestQuickstartFlow(t *testing.T) {
	tr, err := treeclock.ParseTraceString(`
t0 acq l0
t0 w x0
t0 rel l0
t1 acq l0
t1 r x0
t1 rel l0
t2 w x0
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e := treeclock.NewHBTree(tr.Meta)
	det := e.EnableRaceDetection()
	e.Process(tr.Events)
	sum := det.Acc.Summary()
	if sum.Total == 0 {
		t.Fatal("t2's unsynchronized write must race")
	}
	// The same run with vector clocks agrees.
	ev := treeclock.NewHBVector(tr.Meta)
	detV := ev.EnableRaceDetection()
	ev.Process(tr.Events)
	if detV.Acc.Summary() != sum {
		t.Errorf("clock implementations disagree: %+v vs %+v", sum, detV.Acc.Summary())
	}
}

func TestDirectClockUse(t *testing.T) {
	// Tree clocks usable directly as logical clocks, outside any
	// engine: a tiny message-passing interaction.
	const k = 3
	a := treeclock.NewTreeClock(k)
	a.Init(0)
	b := treeclock.NewTreeClock(k)
	b.Init(1)
	a.Inc(0, 1) // a: local event
	b.Inc(1, 1) // b: local event
	b.Join(a)   // a -> b message
	if b.Get(0) != 1 {
		t.Errorf("b.Get(0) = %d, want 1", b.Get(0))
	}
	vec := b.Vector(make(treeclock.Vector, k))
	if !vec.Equal(treeclock.Vector{1, 1, 0}) {
		t.Errorf("b vector = %v", vec)
	}
}

func TestAllEngineConstructors(t *testing.T) {
	tr := treeclock.GenerateMixed(treeclock.GenConfig{Threads: 4, Locks: 2, Vars: 16, Events: 2000, Seed: 5, SyncFrac: 0.3})
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	var st treeclock.WorkStats
	engines := []interface{ Process([]treeclock.Event) }{
		treeclock.NewHBTree(tr.Meta),
		treeclock.NewHBVector(tr.Meta),
		treeclock.NewHBTreeCounting(tr.Meta, &st),
		treeclock.NewHBVectorCounting(tr.Meta, &st),
		treeclock.NewSHBTree(tr.Meta),
		treeclock.NewSHBVector(tr.Meta),
		treeclock.NewMAZTree(tr.Meta),
		treeclock.NewMAZVector(tr.Meta),
	}
	for i, e := range engines {
		e.Process(tr.Events)
		_ = i
	}
	if st.Changed == 0 {
		t.Error("counting constructors recorded no work")
	}
}

func TestTraceIOFacade(t *testing.T) {
	tr := treeclock.GenerateStar(4, 200, 1)
	var text, bin bytes.Buffer
	if err := treeclock.WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	back, err := treeclock.ParseTrace(&text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Error("text round trip changed length")
	}
	if err := treeclock.WriteTraceBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	back2, err := treeclock.ReadTraceBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Len() != tr.Len() {
		t.Error("binary round trip changed length")
	}
	s := treeclock.ComputeTraceStats(tr)
	if s.Events != tr.Len() {
		t.Error("stats events wrong")
	}
}

func TestGeneratorsFacade(t *testing.T) {
	for _, tr := range []*treeclock.Trace{
		treeclock.GenerateSingleLock(4, 500, 1),
		treeclock.GenerateFiftyLocksSkewed(10, 500, 2),
		treeclock.GenerateStar(6, 500, 3),
		treeclock.GeneratePairwise(5, 500, 4),
		treeclock.GenerateProducerConsumer(2, 2, 500, 5),
		treeclock.GeneratePipeline(4, 500, 6),
		treeclock.GenerateBarrierPhases(4, 5, 5, 7),
		treeclock.GenerateReadersWriters(5, 500, 8, false),
		treeclock.GenerateForkJoinTree(4, 20, 9),
	} {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", tr.Meta.Name, err)
		}
	}
}

func ExampleNewSHBTree() {
	tr, _ := treeclock.ParseTraceString("t0 w x0\nt1 r x0\nt1 w x0\n")
	e := treeclock.NewSHBTree(tr.Meta)
	det := e.EnableRaceDetection()
	e.Process(tr.Events)
	fmt.Println("races found:", det.Acc.Total)
	for _, r := range det.Acc.Samples {
		fmt.Println(r)
	}
	// t1's write does not race t0's: the read's last-write edge
	// already orders them under SHB.
	// Output:
	// races found: 1
	// w-r race on x0: t0@1 vs t1@1
}
