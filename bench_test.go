// Benchmarks regenerating the paper's evaluation, one family per table
// and figure (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured comparisons).
//
//	go test -bench=. -benchmem .
//
// Benchmarks use moderate trace sizes so the full sweep finishes in
// minutes; cmd/tcbench runs the same experiments at configurable scale
// and prints paper-style tables.
package treeclock_test

import (
	"bytes"
	"sync"
	"testing"

	"treeclock"
	"treeclock/internal/bench"
	"treeclock/internal/core"
	"treeclock/internal/gen"
	"treeclock/internal/trace"
)

// traceCache memoizes generated workloads across benchmarks.
var traceCache sync.Map

func cached(key string, build func() *trace.Trace) *trace.Trace {
	if v, ok := traceCache.Load(key); ok {
		return v.(*trace.Trace)
	}
	tr := build()
	v, _ := traceCache.LoadOrStore(key, tr)
	return v.(*trace.Trace)
}

// repTrace is the representative communication-rich workload used for
// the Table 2 / Figure 6 benchmark families.
func repTrace() *trace.Trace {
	return cached("rep", func() *trace.Trace {
		return gen.Mixed(gen.Config{
			Name: "rep-k32", Threads: 32, Locks: 24, Vars: 4096,
			Events: 200_000, Seed: 11, SyncFrac: 0.25,
			LockAffinity: 3, Groups: 6, HotFrac: 0.06,
		})
	})
}

func runPO(b *testing.B, tr *trace.Trace, po bench.PO, ck bench.Clock, analysis bool) {
	b.Helper()
	b.ReportAllocs()
	var processing float64 // event-processing time, excluding engine setup
	for i := 0; i < b.N; i++ {
		r := bench.Run(tr, bench.Config{PO: po, Clock: ck, Analysis: analysis})
		processing += r.Seconds()
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/processing, "events/s")
	b.ReportMetric(processing/float64(b.N)*1e9, "process-ns/op")
}

// BenchmarkTable2 regenerates the PO rows of Table 2: compare the tc
// and vc sub-benchmarks per partial order for the speedup.
func BenchmarkTable2(b *testing.B) {
	for _, po := range bench.POs {
		for _, ck := range []bench.Clock{bench.TC, bench.VC} {
			b.Run(po.String()+"/"+ck.String(), func(b *testing.B) {
				runPO(b, repTrace(), po, ck, false)
			})
		}
	}
}

// BenchmarkFig6Analysis regenerates the PO+Analysis rows (Table 2's
// second row / Figure 6's bottom panels).
func BenchmarkFig6Analysis(b *testing.B) {
	for _, po := range bench.POs {
		for _, ck := range []bench.Clock{bench.TC, bench.VC} {
			b.Run(po.String()+"/"+ck.String(), func(b *testing.B) {
				runPO(b, repTrace(), po, ck, true)
			})
		}
	}
}

// BenchmarkFig7SyncShare regenerates Figure 7's trend: HB+analysis at
// increasing synchronization shares; compare tc vs vc at each level —
// the speedup grows with the sync share.
func BenchmarkFig7SyncShare(b *testing.B) {
	levels := []struct {
		name string
		frac float64
	}{{"sync=5%", 0.05}, {"sync=20%", 0.2}, {"sync=45%", 0.45}}
	for _, lv := range levels {
		frac := lv.frac
		tr := cached("fig7-"+lv.name, func() *trace.Trace {
			return gen.Mixed(gen.Config{
				Name: "sync-sweep", Threads: 16, Locks: 8, Vars: 1024,
				Events: 150_000, Seed: 13, SyncFrac: frac,
			})
		})
		for _, ck := range []bench.Clock{bench.TC, bench.VC} {
			b.Run(lv.name+"/"+ck.String(), func(b *testing.B) {
				runPO(b, tr, bench.HB, ck, true)
			})
		}
	}
}

// BenchmarkFig8Work regenerates Figure 8's ratios: TCWork/VTWork
// (Theorem 1 bounds it by 3) and VCWork/VTWork, reported as metrics.
func BenchmarkFig8Work(b *testing.B) {
	tr := repTrace()
	var tcRatio, vcRatio float64
	for i := 0; i < b.N; i++ {
		tc := bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.TC, Work: true})
		vc := bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.VC, Work: true})
		tcRatio = float64(tc.Work.Entries) / float64(tc.Work.Changed)
		vcRatio = float64(vc.Work.Entries) / float64(vc.Work.Changed)
	}
	b.ReportMetric(tcRatio, "TCWork/VTWork")
	b.ReportMetric(vcRatio, "VCWork/VTWork")
}

// BenchmarkFig9WorkRatio regenerates Figure 9's quantity per partial
// order: how many entries vector clocks touch per tree-clock entry.
func BenchmarkFig9WorkRatio(b *testing.B) {
	for _, po := range bench.POs {
		b.Run(po.String(), func(b *testing.B) {
			tr := repTrace()
			var ratio float64
			for i := 0; i < b.N; i++ {
				tc := bench.Run(tr, bench.Config{PO: po, Clock: bench.TC, Work: true})
				vc := bench.Run(tr, bench.Config{PO: po, Clock: bench.VC, Work: true})
				ratio = float64(vc.Work.Entries) / float64(tc.Work.Entries)
			}
			b.ReportMetric(ratio, "VCWork/TCWork")
		})
	}
}

// BenchmarkFig10 regenerates the scalability study: the four §6
// communication patterns at two thread counts, both clocks. The star
// topology shows tree clocks flat in k while vector clocks grow; the
// pairwise pattern is the tree clock's worst case.
func BenchmarkFig10(b *testing.B) {
	for _, sc := range gen.Scenarios {
		for _, k := range []int{16, 64} {
			tr := cached(sc.Name+string(rune('0'+k/16)), func() *trace.Trace {
				return sc.Fn(k, 150_000, int64(k))
			})
			for _, ck := range []bench.Clock{bench.TC, bench.VC} {
				b.Run(sc.Name+"/k="+itoa(k)+"/"+ck.String(), func(b *testing.B) {
					runPO(b, tr, bench.HB, ck, false)
				})
			}
		}
	}
}

// BenchmarkTable1Stats covers the Table 1/Table 3 machinery: suite
// generation plus statistics collection.
func BenchmarkTable1Stats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, tr := range gen.Suite(0.02) {
			trace.ComputeStats(tr)
		}
	}
}

// BenchmarkAblation isolates each tree-clock mechanism on the star
// topology (DESIGN.md §4, ablation row).
func BenchmarkAblation(b *testing.B) {
	tr := cached("ablation-star", func() *trace.Trace { return gen.Star(64, 150_000, 3) })
	modes := []struct {
		name string
		mode core.Mode
	}{
		{"full", core.ModeFull},
		{"no-indirect-break", core.ModeNoIndirectBreak},
		{"deep-copy", core.ModeDeepCopy},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			var processing float64
			for i := 0; i < b.N; i++ {
				processing += bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.TC, Mode: m.mode}).Seconds()
			}
			b.ReportMetric(float64(tr.Len())*float64(b.N)/processing, "events/s")
		})
	}
	b.Run("vector-clock", func(b *testing.B) {
		b.ReportAllocs()
		var processing float64
		for i := 0; i < b.N; i++ {
			processing += bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.VC}).Seconds()
		}
		b.ReportMetric(float64(tr.Len())*float64(b.N)/processing, "events/s")
	})
}

// streamTrace is the 1M-event workload for the streaming-vs-materialized
// comparison, serialized once per format and re-read from memory each
// iteration so the benchmark isolates the analysis path.
func streamTrace() *trace.Trace {
	return cached("stream-1m", func() *trace.Trace {
		return gen.Mixed(gen.Config{
			Name: "stream-1m", Threads: 32, Locks: 24, Vars: 8192,
			Events: 1_000_000, Seed: 17, SyncFrac: 0.25,
			LockAffinity: 3, Groups: 6, HotFrac: 0.06,
		})
	})
}

func streamBytes(b *testing.B, format treeclock.TraceFormat) []byte {
	b.Helper()
	key := "stream-1m-text"
	if format == treeclock.FormatBinary {
		key = "stream-1m-bin"
	}
	if v, ok := traceCache.Load(key); ok {
		return v.([]byte)
	}
	var buf bytes.Buffer
	var err error
	if format == treeclock.FormatBinary {
		err = trace.WriteBinary(&buf, streamTrace())
	} else {
		err = trace.WriteText(&buf, streamTrace())
	}
	if err != nil {
		b.Fatal(err)
	}
	v, _ := traceCache.LoadOrStore(key, buf.Bytes())
	return v.([]byte)
}

// BenchmarkStreaming measures the one-pass streaming path (RunStream:
// parse + analyze with no prior metadata and no materialization) for
// every registry engine over a 1M-event trace, in both formats.
// events/s counts trace events; allocs/op approximates the peak
// allocation behaviour of the O(live-state) streaming pipeline —
// compare against BenchmarkMaterialized, whose numbers exclude parsing
// but include the materialized event slice.
func BenchmarkStreaming(b *testing.B) {
	for _, name := range treeclock.Engines() {
		for _, f := range []struct {
			label  string
			format treeclock.TraceFormat
		}{{"text", treeclock.FormatText}, {"bin", treeclock.FormatBinary}} {
			data := streamBytes(b, f.format)
			b.Run(name+"/"+f.label, func(b *testing.B) {
				b.ReportAllocs()
				n := streamTrace().Len()
				for i := 0; i < b.N; i++ {
					res, err := treeclock.RunStream(name, bytes.NewReader(data),
						treeclock.StreamFormat(f.format))
					if err != nil {
						b.Fatal(err)
					}
					if res.Events != uint64(n) {
						b.Fatalf("streamed %d events, want %d", res.Events, n)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// BenchmarkIngest compares the three ingestion modes — scalar (one
// interface call per event), batch (the default) and pipelined decode —
// on the text path of one tree and one vector engine. On single-core
// machines the pipeline matches the synchronous modes; it needs a
// second core to overlap decoding with analysis.
func BenchmarkIngest(b *testing.B) {
	modes := []struct {
		name string
		opts []treeclock.StreamOption
	}{
		{"scalar", []treeclock.StreamOption{treeclock.StreamScalar()}},
		{"batch", nil},
		{"pipeline", []treeclock.StreamOption{treeclock.WithPipeline(4)}},
	}
	data := streamBytes(b, treeclock.FormatText)
	n := streamTrace().Len()
	for _, name := range []string{"hb-tree", "hb-vc"} {
		for _, m := range modes {
			b.Run(name+"/"+m.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := treeclock.RunStream(name, bytes.NewReader(data), m.opts...)
					if err != nil {
						b.Fatal(err)
					}
					if res.Events != uint64(n) {
						b.Fatalf("streamed %d events, want %d", res.Events, n)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// BenchmarkMaterialized is the baseline for BenchmarkStreaming: the
// same 1M-event workload analyzed from the pre-parsed in-memory trace
// with metadata known up front.
func BenchmarkMaterialized(b *testing.B) {
	tr := streamTrace()
	for _, info := range treeclock.EngineInfos() {
		po, ck, ok := bench.ForNames(info.Order, info.Clock)
		if !ok {
			b.Fatalf("registry entry %q not known to the harness", info.Name)
		}
		b.Run(info.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bench.Run(tr, bench.Config{PO: po, Clock: ck, Analysis: true})
			}
			b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
