package treeclock

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// cancelTrace returns a valid text trace with 2*pairs events spread
// over two threads; every pair is an independent conflict so any
// prefix is a well-formed trace.
func cancelTrace(pairs int) []byte {
	var b bytes.Buffer
	for i := 0; i < pairs; i++ {
		b.WriteString("t0 w x\nt1 w x\n")
	}
	return b.Bytes()
}

// cancelAt returns stream options that cancel ctx once roughly
// `after` events have been ingested.
func cancelAt(ctx context.Context, cancel context.CancelFunc, after uint64) []StreamOption {
	return []StreamOption{
		StreamValidate(),
		WithContext(ctx),
		WithProgress(after, func(Progress) { cancel() }),
	}
}

// expectCancelled asserts the run stopped early with ctx.Err() and a
// consistent partial result.
func expectCancelled(t *testing.T, res *StreamResult, err error, total uint64) {
	t.Helper()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Events == 0 || res.Events >= total {
		t.Fatalf("partial result covers %d events, want within (0, %d)", res.Events, total)
	}
	if res.Mem == nil {
		t.Fatal("partial result missing MemStats")
	}
}

// checkGoroutines polls until the goroutine count returns to the
// pre-run baseline, failing with a full stack dump if it never does —
// a cancelled run must not leak its decoder or worker goroutines.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after cancellation: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelStream covers WithContext across the three driver shapes:
// the sequential loop, the pipelined decoder, and the sharded parallel
// runtime. Each run must stop shortly after cancellation, return the
// partial result alongside ctx.Err(), and leave no goroutines behind.
func TestCancelStream(t *testing.T) {
	const pairs = 30_000
	const total = 2 * pairs
	text := cancelTrace(pairs)

	run := func(t *testing.T, f func(opts ...StreamOption) (*StreamResult, error)) {
		t.Helper()
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		res, err := f(cancelAt(ctx, cancel, 2048)...)
		expectCancelled(t, res, err, total)
		checkGoroutines(t, base)
	}

	t.Run("sequential", func(t *testing.T) {
		run(t, func(opts ...StreamOption) (*StreamResult, error) {
			return RunStream("wcp-tree", bytes.NewReader(text), opts...)
		})
	})
	t.Run("pipelined", func(t *testing.T) {
		run(t, func(opts ...StreamOption) (*StreamResult, error) {
			opts = append(opts, WithPipeline(2))
			return RunStream("wcp-tree", bytes.NewReader(text), opts...)
		})
	})
	t.Run("parallel", func(t *testing.T) {
		run(t, func(opts ...StreamOption) (*StreamResult, error) {
			opts = append(opts, WithWorkers(2))
			return RunStreamParallel("wcp-tree", bytes.NewReader(text), opts...)
		})
	})
}

// TestCancelBeforeStart pins that an already-cancelled context stops
// the run at the first batch boundary with a zero-event partial
// result, in both drivers.
func TestCancelBeforeStart(t *testing.T) {
	text := cancelTrace(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []string{"sequential", "parallel"} {
		t.Run(mode, func(t *testing.T) {
			var res *StreamResult
			var err error
			if mode == "sequential" {
				res, err = RunStream("hb-tree", bytes.NewReader(text), WithContext(ctx))
			} else {
				res, err = RunStreamParallel("hb-tree", bytes.NewReader(text),
					WithContext(ctx), WithWorkers(2))
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res == nil {
				t.Fatal("no partial result")
			}
			if res.Events != 0 {
				t.Fatalf("pre-cancelled run processed %d events, want 0", res.Events)
			}
		})
	}
}
