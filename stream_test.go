package treeclock_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"treeclock"
)

// generatorSuite returns one trace per generator in internal/gen (via
// the façade), sized small enough that the full differential sweep
// (every generator × every registry engine × both formats) stays fast.
func generatorSuite() []*treeclock.Trace {
	return []*treeclock.Trace{
		treeclock.GenerateMixed(treeclock.GenConfig{
			Name: "mixed", Threads: 10, Locks: 6, Vars: 32,
			Events: 4000, Seed: 21, SyncFrac: 0.3, LockAffinity: 2, Groups: 3, HotFrac: 0.1,
		}),
		treeclock.GenerateSingleLock(6, 2000, 1),
		treeclock.GenerateFiftyLocksSkewed(12, 2500, 2),
		treeclock.GenerateStar(8, 2000, 3),
		treeclock.GeneratePairwise(6, 2000, 4),
		treeclock.GenerateProducerConsumer(3, 3, 2000, 5),
		treeclock.GeneratePipeline(4, 2000, 6),
		treeclock.GenerateBarrierPhases(5, 6, 10, 7),
		treeclock.GenerateReadersWriters(8, 2000, 8, true),
		treeclock.GenerateForkJoinTree(5, 40, 9),
		treeclock.GenerateNestedLocks(6, 3, 2000, 10),
		treeclock.GenerateGuardedPairs(6, 8, 2000, 11),
		treeclock.GeneratePredictivePairs(6, 1500, 12),
	}
}

// materialized runs the classic pre-sized engine over a materialized
// trace and returns the race summary, samples and final timestamps —
// the reference the streaming path must reproduce exactly.
func materialized(t *testing.T, tr *treeclock.Trace, engineName string) (treeclock.RaceSummary, []treeclock.Race, []treeclock.Vector) {
	t.Helper()
	type processor interface {
		Process([]treeclock.Event)
		Timestamp(treeclock.ThreadID, treeclock.Vector) treeclock.Vector
	}
	var (
		e   processor
		sum treeclock.RaceSummary
		acc *treeclock.RaceAccumulator
	)
	switch engineName {
	case "hb-tree":
		en := treeclock.NewHBTree(tr.Meta)
		acc = en.EnableRaceDetection().Acc
		e = en
	case "hb-vc":
		en := treeclock.NewHBVector(tr.Meta)
		acc = en.EnableRaceDetection().Acc
		e = en
	case "shb-tree":
		en := treeclock.NewSHBTree(tr.Meta)
		acc = en.EnableRaceDetection().Acc
		e = en
	case "shb-vc":
		en := treeclock.NewSHBVector(tr.Meta)
		acc = en.EnableRaceDetection().Acc
		e = en
	case "maz-tree":
		en := treeclock.NewMAZTree(tr.Meta)
		acc = en.EnableAnalysis()
		e = en
	case "maz-vc":
		en := treeclock.NewMAZVector(tr.Meta)
		acc = en.EnableAnalysis()
		e = en
	case "wcp-tree":
		en := treeclock.NewWCPTree(tr.Meta)
		acc = en.EnableAnalysis()
		e = en
	case "wcp-vc":
		en := treeclock.NewWCPVector(tr.Meta)
		acc = en.EnableAnalysis()
		e = en
	default:
		t.Fatalf("unknown engine %q", engineName)
	}
	e.Process(tr.Events)
	sum = acc.Summary()
	ts := make([]treeclock.Vector, tr.Meta.Threads)
	for th := 0; th < tr.Meta.Threads; th++ {
		ts[th] = e.Timestamp(treeclock.ThreadID(th), make(treeclock.Vector, tr.Meta.Threads))
	}
	return sum, acc.Samples, ts
}

// raceReport renders a summary and its samples deterministically; the
// streaming and materialized paths must produce byte-identical reports.
func raceReport(sum treeclock.RaceSummary, samples []treeclock.Race) string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d ww=%d wr=%d rw=%d vars=%d\n",
		sum.Total, sum.WriteWrite, sum.WriteRead, sum.ReadWrite, sum.Vars)
	for _, p := range samples {
		fmt.Fprintf(&b, "%s\n", p)
	}
	return b.String()
}

// TestStreamingMatchesMaterialized is the acceptance test of the
// streaming refactor: for every generator and every registry engine,
// feeding the serialized trace through RunStream as a plain io.Reader —
// with no precomputed Meta — must yield byte-identical race reports and
// identical final vector timestamps to the materialized path.
func TestStreamingMatchesMaterialized(t *testing.T) {
	for _, tr := range generatorSuite() {
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid generated trace: %v", tr.Meta.Name, err)
		}
		var text, bin bytes.Buffer
		if err := treeclock.WriteTraceText(&text, tr); err != nil {
			t.Fatal(err)
		}
		if err := treeclock.WriteTraceBinary(&bin, tr); err != nil {
			t.Fatal(err)
		}
		// The text format interns identifiers in order of first
		// appearance, so the reference for the text path is the
		// re-parsed trace (same renaming); the binary format keeps ids
		// verbatim, so its reference is the original trace.
		reparsed, err := treeclock.ParseTrace(bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, engineName := range treeclock.Engines() {
			t.Run(tr.Meta.Name+"/"+engineName, func(t *testing.T) {
				checkStream(t, engineName, reparsed, text.Bytes())
				checkStream(t, engineName, tr, bin.Bytes(), treeclock.StreamBinary())
			})
		}
	}
}

// checkStream streams data through engineName and compares against the
// materialized run of ref.
func checkStream(t *testing.T, engineName string, ref *treeclock.Trace, data []byte, opts ...treeclock.StreamOption) {
	t.Helper()
	wantSum, wantSamples, wantTS := materialized(t, ref, engineName)
	res, err := treeclock.RunStream(engineName, bytes.NewReader(data), opts...)
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if res.Events != uint64(ref.Len()) {
		t.Errorf("Events = %d, want %d", res.Events, ref.Len())
	}
	got := raceReport(res.Summary, res.Samples)
	want := raceReport(wantSum, wantSamples)
	if got != want {
		t.Errorf("race report diverges:\nstreaming:\n%s\nmaterialized:\n%s", got, want)
	}
	if res.Meta.Threads > ref.Meta.Threads {
		t.Fatalf("discovered %d threads, reference has %d", res.Meta.Threads, ref.Meta.Threads)
	}
	for th := 0; th < res.Meta.Threads; th++ {
		gotV, wantV := res.Timestamps[th], wantTS[th]
		for u := 0; u < ref.Meta.Threads; u++ {
			if gotV.Get(treeclock.ThreadID(u)) != wantV.Get(treeclock.ThreadID(u)) {
				t.Fatalf("thread %d timestamp diverges: streaming %v, materialized %v", th, gotV, wantV)
			}
		}
	}
}

// TestLockClockBeforeThreadGrowth pins, across the whole registry,
// that a lock clock allocated at an early (small) thread capacity
// still yields correct results after the thread space grows: the
// streaming run (which allocates lock 0's clock when only thread 0
// exists) must match the pre-sized materialized run (which allocates
// it at full capacity) event for event. The binary format keeps thread
// ids verbatim, so the jump from thread 0 to thread 5 survives
// serialization.
func TestLockClockBeforeThreadGrowth(t *testing.T) {
	tr := &treeclock.Trace{
		Meta: treeclock.Meta{Name: "lock-before-growth", Threads: 6, Locks: 1, Vars: 2},
		Events: []treeclock.Event{
			{T: 0, Obj: 0, Kind: treeclock.Acquire},
			{T: 0, Obj: 0, Kind: treeclock.Write},
			{T: 0, Obj: 0, Kind: treeclock.Release},
			{T: 5, Obj: 1, Kind: treeclock.Write},
			{T: 5, Obj: 0, Kind: treeclock.Acquire},
			{T: 5, Obj: 0, Kind: treeclock.Write},
			{T: 5, Obj: 0, Kind: treeclock.Release},
			{T: 2, Obj: 0, Kind: treeclock.Acquire},
			{T: 2, Obj: 0, Kind: treeclock.Read},
			{T: 2, Obj: 0, Kind: treeclock.Release},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	var bin bytes.Buffer
	if err := treeclock.WriteTraceBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	for _, engineName := range treeclock.Engines() {
		t.Run(engineName, func(t *testing.T) {
			checkStream(t, engineName, tr, bin.Bytes(), treeclock.StreamBinary())
		})
	}
}

// TestRunStreamSource covers the event-source entry point and the
// retained-state reporting: a bounded endless generator streams
// through the registry, WCP engines report Mem (with compaction
// keeping the history bounded), and the other orders report nil.
func TestRunStreamSource(t *testing.T) {
	const n = 50000
	for _, engineName := range treeclock.Engines() {
		src := treeclock.LimitEvents(treeclock.GenerateHotLockStream(4, 17), n)
		res, err := treeclock.RunStreamSource(engineName, src)
		if err != nil {
			t.Fatalf("%s: %v", engineName, err)
		}
		if res.Events != n {
			t.Errorf("%s: processed %d events, want %d", engineName, res.Events, n)
		}
		if strings.HasPrefix(engineName, "wcp-") {
			if res.Mem == nil {
				t.Fatalf("%s: no retained-state report", engineName)
			}
			if res.Mem.DroppedEntries == 0 {
				t.Errorf("%s: compaction never ran on the hot-lock stream: %+v", engineName, res.Mem)
			}
			if res.Mem.PeakLockHist > 16 {
				t.Errorf("%s: peak history %d on a 4-thread hot lock", engineName, res.Mem.PeakLockHist)
			}
		} else if res.Mem != nil {
			t.Errorf("%s: unexpected retained-state report %+v", engineName, res.Mem)
		}
	}
	// The source path must agree with the reader path byte for byte.
	tr := treeclock.GenerateMixed(treeclock.GenConfig{
		Name: "src-vs-reader", Threads: 6, Locks: 4, Vars: 16,
		Events: 3000, Seed: 23, SyncFrac: 0.4,
	})
	var bin bytes.Buffer
	if err := treeclock.WriteTraceBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	for _, engineName := range treeclock.Engines() {
		fromReader, err := treeclock.RunStream(engineName, bytes.NewReader(bin.Bytes()), treeclock.StreamBinary())
		if err != nil {
			t.Fatal(err)
		}
		fromSource, err := treeclock.RunStreamSource(engineName, treeclock.NewTraceReplayer(tr))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := raceReport(fromSource.Summary, fromSource.Samples), raceReport(fromReader.Summary, fromReader.Samples); got != want {
			t.Errorf("%s: source path diverges from reader path:\nsource:\n%s\nreader:\n%s", engineName, got, want)
		}
	}
}

// TestRunStreamNoAnalysis covers the pure partial-order configuration.
func TestRunStreamNoAnalysis(t *testing.T) {
	tr := treeclock.GenerateStar(6, 1000, 11)
	var text bytes.Buffer
	if err := treeclock.WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	res, err := treeclock.RunStream("hb-tree", bytes.NewReader(text.Bytes()), treeclock.StreamNoAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Total != 0 || res.Samples != nil {
		t.Errorf("analysis ran despite StreamNoAnalysis: %+v", res.Summary)
	}
	if res.Events != uint64(tr.Len()) {
		t.Errorf("Events = %d, want %d", res.Events, tr.Len())
	}
}

// TestRunStreamWorkStats checks the work counters flow through the
// streaming path.
func TestRunStreamWorkStats(t *testing.T) {
	tr := treeclock.GenerateSingleLock(5, 800, 13)
	var text bytes.Buffer
	if err := treeclock.WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	var st treeclock.WorkStats
	if _, err := treeclock.RunStream("hb-vc", bytes.NewReader(text.Bytes()), treeclock.StreamWorkStats(&st)); err != nil {
		t.Fatal(err)
	}
	if st.Changed == 0 || st.Entries == 0 {
		t.Errorf("no work recorded: %+v", st)
	}
}

// TestRunStreamErrors covers registry misses and malformed input.
func TestRunStreamErrors(t *testing.T) {
	if _, err := treeclock.RunStream("hb-quantum", strings.NewReader("")); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := treeclock.RunStream("hb-tree", strings.NewReader("t0 frobnicate x0\n")); err == nil {
		t.Error("malformed trace accepted")
	}
}

// TestRunStreamValidate covers the incremental well-formedness option.
func TestRunStreamValidate(t *testing.T) {
	bad := "t0 acq l0\nt1 acq l0\n"
	if _, err := treeclock.RunStream("hb-tree", strings.NewReader(bad), treeclock.StreamValidate()); err == nil {
		t.Error("double acquire accepted with StreamValidate")
	}
	if _, err := treeclock.RunStream("hb-tree", strings.NewReader(bad)); err != nil {
		t.Errorf("without StreamValidate the stream should be accepted: %v", err)
	}
	good := "t0 acq l0\nt0 w x0\nt0 rel l0\n"
	res, err := treeclock.RunStream("hb-tree", strings.NewReader(good), treeclock.StreamValidate())
	if err != nil {
		t.Fatalf("well-formed trace rejected: %v", err)
	}
	if res.Events != 3 {
		t.Errorf("Events = %d, want 3", res.Events)
	}
}

// TestEngineRegistry sanity-checks the registry listing.
func TestEngineRegistry(t *testing.T) {
	names := treeclock.Engines()
	want := []string{"hb-tree", "hb-vc", "maz-tree", "maz-vc", "shb-tree", "shb-vc", "wcp-tree", "wcp-vc"}
	if len(names) != len(want) {
		t.Fatalf("Engines() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Engines() = %v, want %v", names, want)
		}
	}
	for _, info := range treeclock.EngineInfos() {
		if info.Doc == "" || info.Order == "" || info.Clock == "" {
			t.Errorf("incomplete registry entry: %+v", info)
		}
	}
}

// TestClockVariantsByteIdentical is the metamorphic clock-equivalence
// check of the registry: for every generator scenario and every
// partial order, the tree-clock and vector-clock variants must render
// byte-identical race reports and identical final timestamps — the
// data structure must never leak into the analysis result.
func TestClockVariantsByteIdentical(t *testing.T) {
	orders := map[string][2]string{}
	for _, info := range treeclock.EngineInfos() {
		pair := orders[info.Order]
		if info.Clock == "tree" {
			pair[0] = info.Name
		} else {
			pair[1] = info.Name
		}
		orders[info.Order] = pair
	}
	for _, tr := range generatorSuite() {
		var bin bytes.Buffer
		if err := treeclock.WriteTraceBinary(&bin, tr); err != nil {
			t.Fatal(err)
		}
		for order, pair := range orders {
			t.Run(tr.Meta.Name+"/"+order, func(t *testing.T) {
				if pair[0] == "" || pair[1] == "" {
					t.Fatalf("order %q missing a clock variant: %v", order, pair)
				}
				resTree, err := treeclock.RunStream(pair[0], bytes.NewReader(bin.Bytes()), treeclock.StreamBinary())
				if err != nil {
					t.Fatal(err)
				}
				resVC, err := treeclock.RunStream(pair[1], bytes.NewReader(bin.Bytes()), treeclock.StreamBinary())
				if err != nil {
					t.Fatal(err)
				}
				gotTree := raceReport(resTree.Summary, resTree.Samples)
				gotVC := raceReport(resVC.Summary, resVC.Samples)
				if gotTree != gotVC {
					t.Errorf("race reports diverge:\n%s:\n%s\n%s:\n%s", pair[0], gotTree, pair[1], gotVC)
				}
				if len(resTree.Timestamps) != len(resVC.Timestamps) {
					t.Fatalf("timestamp counts diverge: %d vs %d", len(resTree.Timestamps), len(resVC.Timestamps))
				}
				for th := range resTree.Timestamps {
					if !resTree.Timestamps[th].Equal(resVC.Timestamps[th]) {
						t.Errorf("thread %d: %v vs %v", th, resTree.Timestamps[th], resVC.Timestamps[th])
					}
				}
			})
		}
	}
}

// TestWCPStreamFindsPredictiveRace pins the registry-level behavior
// difference on the predictive-race generator: HB reports nothing,
// WCP reports the hidden races, on both clock variants.
func TestWCPStreamFindsPredictiveRace(t *testing.T) {
	tr := treeclock.GeneratePredictivePairs(4, 400, 77)
	var text bytes.Buffer
	if err := treeclock.WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	for _, engineName := range []string{"hb-tree", "hb-vc"} {
		res, err := treeclock.RunStream(engineName, bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Total != 0 {
			t.Errorf("%s: HB must miss the predictive races, got %d", engineName, res.Summary.Total)
		}
	}
	hbRes, err := treeclock.RunStream("hb-tree", bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, engineName := range []string{"wcp-tree", "wcp-vc"} {
		res, err := treeclock.RunStream(engineName, bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Total == 0 {
			t.Errorf("%s: WCP must flag the predictive races", engineName)
		}
		// The reported timestamps must be the weak order, not the HB
		// scaffolding: on this trace WCP orders strictly less than HB,
		// so some thread must know strictly less about some other.
		weaker := false
		for th, wv := range res.Timestamps {
			hv := hbRes.Timestamps[th]
			for u := range hv {
				if wv.Get(treeclock.ThreadID(u)) > hv.Get(treeclock.ThreadID(u)) {
					t.Fatalf("%s: thread %d WCP timestamp %v exceeds HB %v", engineName, th, wv, hv)
				}
				if wv.Get(treeclock.ThreadID(u)) < hv.Get(treeclock.ThreadID(u)) {
					weaker = true
				}
			}
		}
		if !weaker {
			t.Errorf("%s: Timestamps equal HB's — the weak-order override is not wired in", engineName)
		}
	}
}
