// messagepassing: tree clocks used directly as logical clocks in a
// simulated distributed system (the Fidge/Mattern setting vector
// clocks come from). Each process stamps its events; messages carry
// the sender's clock, and the receiver joins it. Causality between any
// two recorded events is then decided by comparing timestamps
// (Lemma 1), with joins running in sublinear time thanks to the tree
// structure.
//
//	go run ./examples/messagepassing
package main

import (
	"fmt"
	"math/rand"

	"treeclock"
)

const processes = 6

type event struct {
	proc  treeclock.ThreadID
	seq   treeclock.Time
	kind  string
	stamp treeclock.Vector
}

func main() {
	r := rand.New(rand.NewSource(3))
	clocks := make([]*treeclock.TreeClock, processes)
	for p := range clocks {
		clocks[p] = treeclock.NewTreeClock(processes)
		clocks[p].Init(treeclock.ThreadID(p))
	}
	var log []event
	record := func(p treeclock.ThreadID, kind string) {
		c := clocks[p]
		log = append(log, event{
			proc:  p,
			seq:   c.Get(p),
			kind:  kind,
			stamp: c.Vector(make(treeclock.Vector, processes)),
		})
	}

	// Simulate: each step one process does a local event or sends a
	// message to a random peer (receive is immediate for simplicity).
	for i := 0; i < 40; i++ {
		p := treeclock.ThreadID(r.Intn(processes))
		clocks[p].Inc(p, 1)
		if r.Intn(2) == 0 {
			record(p, "local")
			continue
		}
		q := treeclock.ThreadID(r.Intn(processes))
		if q == p {
			q = (q + 1) % processes
		}
		record(p, fmt.Sprintf("send to P%d", q))
		clocks[q].Inc(q, 1)
		clocks[q].Join(clocks[p]) // message delivery: receiver learns sender's past
		record(q, fmt.Sprintf("recv from P%d", p))
	}

	fmt.Println("event log (process, seq, kind, vector stamp):")
	for i, e := range log {
		fmt.Printf("%3d  P%d@%d  %-12s %v\n", i, e.proc, e.seq, e.kind, e.stamp)
	}

	// Causality queries: compare stamps of a few random event pairs.
	fmt.Println("\ncausality between sampled pairs:")
	for n := 0; n < 6; n++ {
		i := r.Intn(len(log))
		j := r.Intn(len(log))
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		a, b := log[i], log[j]
		switch {
		case a.stamp.LessEq(b.stamp):
			fmt.Printf("  event %d (P%d@%d) happened-before event %d (P%d@%d)\n",
				i, a.proc, a.seq, j, b.proc, b.seq)
		case b.stamp.LessEq(a.stamp):
			fmt.Printf("  event %d happened-before event %d\n", j, i)
		default:
			fmt.Printf("  events %d (P%d@%d) and %d (P%d@%d) are concurrent\n",
				i, a.proc, a.seq, j, b.proc, b.seq)
		}
	}

	fmt.Println("\nfinal tree of P0's clock (how knowledge was acquired):")
	fmt.Print(clocks[0])
}
