// racedetect: generate a realistic racy workload (readers mostly
// bypassing the writer's lock), run happens-before and schedulable-
// happens-before race detection with both clock data structures, and
// compare what they find and how fast.
//
//	go run ./examples/racedetect
package main

import (
	"fmt"
	"time"

	"treeclock"
)

func main() {
	// One writer thread updating a shared table under a lock; fifteen
	// reader threads reading it without synchronization.
	tr := treeclock.GenerateReadersWriters(16, 400_000, 42, true)
	stats := treeclock.ComputeTraceStats(tr)
	fmt.Printf("workload: %s — %d events, %d threads (%.1f%% sync)\n\n",
		stats.Name, stats.Events, stats.Threads, stats.SyncPct)

	// HB with tree clocks.
	start := time.Now()
	hbEngine := treeclock.NewHBTree(tr.Meta)
	hbDet := hbEngine.EnableRaceDetection()
	hbEngine.Process(tr.Events)
	hbTime := time.Since(start)

	// SHB with tree clocks: sound to report beyond the first race.
	start = time.Now()
	shbEngine := treeclock.NewSHBTree(tr.Meta)
	shbDet := shbEngine.EnableRaceDetection()
	shbEngine.Process(tr.Events)
	shbTime := time.Since(start)

	// The vector-clock baselines, for timing comparison.
	start = time.Now()
	hbVec := treeclock.NewHBVector(tr.Meta)
	hbVecDet := hbVec.EnableRaceDetection()
	hbVec.Process(tr.Events)
	hbVecTime := time.Since(start)

	start = time.Now()
	shbVec := treeclock.NewSHBVector(tr.Meta)
	shbVecDet := shbVec.EnableRaceDetection()
	shbVec.Process(tr.Events)
	shbVecTime := time.Since(start)

	fmt.Println("algorithm   clock  time        races")
	fmt.Printf("HB          tree   %-10v  %d\n", hbTime.Round(time.Millisecond), hbDet.Acc.Total)
	fmt.Printf("HB          vector %-10v  %d\n", hbVecTime.Round(time.Millisecond), hbVecDet.Acc.Total)
	fmt.Printf("SHB         tree   %-10v  %d\n", shbTime.Round(time.Millisecond), shbDet.Acc.Total)
	fmt.Printf("SHB         vector %-10v  %d\n", shbVecTime.Round(time.Millisecond), shbVecDet.Acc.Total)

	fmt.Println("\nsample races (SHB):")
	for i, race := range shbDet.Acc.Samples {
		if i == 5 {
			break
		}
		fmt.Println(" ", race)
	}
	if hbDet.Acc.Total != shbVecDet.Acc.Total && hbDet.Acc.Total != shbDet.Acc.Total {
		fmt.Println("\nnote: SHB and HB race sets differ by design — SHB adds last-write edges")
	}
}
