// bank: a concurrent bank simulation whose execution is logged as a
// trace and then analyzed. Tellers transfer money between accounts
// under per-account locks; an "audit" thread sums balances. One buggy
// fast-path deposit skips the lock — the SHB analysis pinpoints it.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"math/rand"

	"treeclock"
)

const (
	accounts = 8
	tellers  = 4
	rounds   = 2000
)

// The audit thread is the last thread id; variable i is account i's
// balance; lock i guards account i.
func buildTrace() *treeclock.Trace {
	r := rand.New(rand.NewSource(7))
	auditor := treeclock.ThreadID(tellers)
	var events []treeclock.Event

	transfer := func(t treeclock.ThreadID, from, to int32) {
		// Lock ordering by account id avoids deadlock in a real
		// program and keeps the trace well formed here.
		a, b := from, to
		if a > b {
			a, b = b, a
		}
		events = append(events,
			treeclock.Event{T: t, Obj: a, Kind: treeclock.Acquire},
			treeclock.Event{T: t, Obj: b, Kind: treeclock.Acquire},
			treeclock.Event{T: t, Obj: from, Kind: treeclock.Read},
			treeclock.Event{T: t, Obj: from, Kind: treeclock.Write},
			treeclock.Event{T: t, Obj: to, Kind: treeclock.Read},
			treeclock.Event{T: t, Obj: to, Kind: treeclock.Write},
			treeclock.Event{T: t, Obj: b, Kind: treeclock.Release},
			treeclock.Event{T: t, Obj: a, Kind: treeclock.Release},
		)
	}
	buggyDeposit := func(t treeclock.ThreadID, acct int32) {
		// BUG: read-modify-write without taking the account lock.
		events = append(events,
			treeclock.Event{T: t, Obj: acct, Kind: treeclock.Read},
			treeclock.Event{T: t, Obj: acct, Kind: treeclock.Write},
		)
	}
	audit := func() {
		for a := int32(0); a < accounts; a++ {
			events = append(events,
				treeclock.Event{T: auditor, Obj: a, Kind: treeclock.Acquire},
				treeclock.Event{T: auditor, Obj: a, Kind: treeclock.Read},
				treeclock.Event{T: auditor, Obj: a, Kind: treeclock.Release},
			)
		}
	}

	for i := 0; i < rounds; i++ {
		t := treeclock.ThreadID(r.Intn(tellers))
		from := int32(r.Intn(accounts))
		to := int32(r.Intn(accounts))
		if from == to {
			to = (to + 1) % accounts
		}
		switch {
		case r.Intn(100) == 0: // rare buggy fast path
			buggyDeposit(t, from)
		case r.Intn(50) == 0:
			audit()
		default:
			transfer(t, from, to)
		}
	}
	return &treeclock.Trace{
		Meta: treeclock.Meta{
			Name:    "bank",
			Threads: tellers + 1,
			Locks:   accounts,
			Vars:    accounts,
		},
		Events: events,
	}
}

func main() {
	tr := buildTrace()
	if err := tr.Validate(); err != nil {
		panic(err)
	}
	stats := treeclock.ComputeTraceStats(tr)
	fmt.Printf("bank simulation: %d events, %d tellers + 1 auditor, %d accounts\n",
		stats.Events, tellers, accounts)

	engine := treeclock.NewSHBTree(tr.Meta)
	det := engine.EnableRaceDetection()
	engine.Process(tr.Events)

	sum := det.Acc.Summary()
	if sum.Total == 0 {
		fmt.Println("no races found")
		return
	}
	fmt.Printf("found %d racy pairs on %d account(s) — the unlocked fast-path deposit:\n",
		sum.Total, sum.Vars)
	for i, race := range det.Acc.Samples {
		if i == 6 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", race)
	}
	fmt.Println("\naccounts involved:")
	for x := range det.Acc.RacyVars() {
		fmt.Printf("  account %d\n", x)
	}
}
