// Quickstart: parse a small execution trace, compute happens-before
// with tree clocks, and report data races.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"treeclock"
)

// A trace with one protected write, one protected read, and one
// unsynchronized write that races both.
const input = `
# thread  op  operand
main    acq  mu
main    w    balance
main    rel  mu
worker1 acq  mu
worker1 r    balance
worker1 rel  mu
worker2 w    balance
`

func main() {
	tr, err := treeclock.ParseTraceString(input)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	if err := tr.Validate(); err != nil {
		log.Fatalf("invalid trace: %v", err)
	}
	stats := treeclock.ComputeTraceStats(tr)
	fmt.Printf("trace: %d events, %d threads, %d variables, %d locks\n",
		stats.Events, stats.Threads, stats.Vars, stats.Locks)

	// Build the happens-before engine backed by tree clocks and attach
	// the FastTrack-style race detector.
	engine := treeclock.NewHBTree(tr.Meta)
	det := engine.EnableRaceDetection()
	engine.Process(tr.Events)

	sum := det.Acc.Summary()
	fmt.Printf("races: %d total (%d w-w, %d w-r, %d r-w) on %d variable(s)\n",
		sum.Total, sum.WriteWrite, sum.WriteRead, sum.ReadWrite, sum.Vars)
	for _, race := range det.Acc.Samples {
		fmt.Println(" ", race)
	}

	// Each thread's final timestamp is its knowledge of every thread.
	vec := make(treeclock.Vector, tr.Meta.Threads)
	for t := 0; t < tr.Meta.Threads; t++ {
		fmt.Printf("final clock of thread %d: %v\n", t, engine.Timestamp(treeclock.ThreadID(t), vec))
	}
}
