// scalability: a miniature of the paper's Figure 10 — happens-before
// computation time versus thread count on the star topology, where
// tree clocks stay flat while vector clocks grow linearly with the
// number of threads.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"time"

	"treeclock"
)

const eventsPerTrace = 200_000

func run(tr *treeclock.Trace, useTree bool) time.Duration {
	start := time.Now()
	if useTree {
		treeclock.NewHBTree(tr.Meta).Process(tr.Events)
	} else {
		treeclock.NewHBVector(tr.Meta).Process(tr.Events)
	}
	return time.Since(start)
}

func main() {
	fmt.Printf("star topology, %d sync events per trace (paper Fig. 10c)\n\n", eventsPerTrace)
	fmt.Println("threads  vector clock  tree clock  speedup")
	for _, k := range []int{10, 40, 80, 160, 240, 320} {
		tr := treeclock.GenerateStar(k, eventsPerTrace, int64(k))
		// Warm up once, then time.
		run(tr, true)
		tc := run(tr, true)
		vc := run(tr, false)
		fmt.Printf("%7d  %12v  %10v  %6.2fx\n",
			k, vc.Round(time.Millisecond), tc.Round(time.Millisecond),
			float64(vc)/float64(tc))
	}
	fmt.Println("\nvector clocks scale with k; tree clocks touch only the entries that change.")
}
