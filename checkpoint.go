package treeclock

// Checkpoint/resume for streaming analysis
//
// A checkpoint captures everything a resumed run needs to continue as
// if the interruption never happened: the run configuration (engine,
// transport, analysis/validation switches, shard count, event count),
// the decode frontier of the trace source (byte offset, interner
// tables), and the full engine state of every replica (clocks,
// detector/accumulator, plugin state). The format is the versioned,
// length-prefixed, CRC-checked section stream of internal/ckpt:
//
//	header | "config" | source sections | engine sections × shards | "end"
//
// Engine sections are written by engine.Runtime.Snapshot (one "engine"
// and one "analysis" section plus the semantics plugin's own). A
// truncated, bit-flipped or misdirected checkpoint fails restore with
// an error wrapping ErrCorruptCheckpoint; it never panics and never
// leaves a half-restored run behind (restore errors discard the run).
//
// Checkpoints are written at batch boundaries, so the event count in a
// checkpoint is always a prefix of the trace that every state machine
// (engine, validator, interner) has fully processed. Sinks receive
// only complete checkpoint byte streams: the bytes are assembled in
// memory first, so a crash while writing can at worst leave a torn
// file, which FileCheckpointSink avoids with a temp-file rename.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"treeclock/internal/ckpt"
	"treeclock/internal/trace"
)

// ErrCorruptCheckpoint is the sentinel every checkpoint decode failure
// wraps: truncation, CRC mismatch, unexpected sections, out-of-range
// values. Distinguish "the checkpoint is bad" from plain I/O trouble
// with errors.Is(err, ErrCorruptCheckpoint).
var ErrCorruptCheckpoint = ckpt.ErrCorrupt

// CheckpointSink receives completed checkpoints. Create is called once
// per checkpoint with the event count it covers; the returned writer
// receives the complete checkpoint bytes and is then closed. Close
// commits the checkpoint — a sink that replaces a previous checkpoint
// must do so atomically only in Close (see FileCheckpointSink).
type CheckpointSink interface {
	Create(events uint64) (io.WriteCloser, error)
}

// FileCheckpointSink writes each checkpoint to Path, replacing the
// previous one atomically: the bytes go to a temporary file in the
// same directory, synced and renamed over Path on Close, so a crash
// mid-write never leaves a torn checkpoint behind.
type FileCheckpointSink struct {
	// Path is the checkpoint file location.
	Path string
}

// Create implements CheckpointSink.
func (s FileCheckpointSink) Create(events uint64) (io.WriteCloser, error) {
	dir := filepath.Dir(s.Path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return nil, err
	}
	return &atomicFile{f: f, path: s.Path}, nil
}

// atomicFile commits a temp file to its final path on Close.
type atomicFile struct {
	f    *os.File
	path string
	done bool
}

func (a *atomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

func (a *atomicFile) Close() error {
	if a.done {
		return nil
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.f.Name())
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	return os.Rename(a.f.Name(), a.path)
}

// WithCheckpoint makes the run write a checkpoint to sink roughly
// every `every` events (at batch granularity: at the first batch
// boundary past each multiple; every == 0 selects one checkpoint per
// million events). A run interrupted afterwards — by a crash, a kill,
// or a cancelled context — can continue from the last completed
// checkpoint with ResumeFrom, and its results are byte-identical to an
// uninterrupted run's.
//
// Checkpointing is incompatible with WithPipeline (the asynchronous
// decoder's in-flight state cannot be serialized); the automatic
// pipeline selection stays synchronous when checkpointing is on.
func WithCheckpoint(every uint64, sink CheckpointSink) StreamOption {
	return func(c *streamConfig) {
		if every == 0 {
			every = 1 << 20
		}
		c.ckptEvery, c.ckptSink = every, sink
	}
}

// ResumeFrom restores the run from a checkpoint read from r before any
// trace input is consumed: the trace reader is fast-forwarded to the
// checkpoint's byte offset and the engine continues from the restored
// state. The run configuration — engine name, weak-clock transport,
// analysis and validation switches, worker count — must match the
// checkpointed run's, and the trace reader must serve the same input;
// mismatches fail with a descriptive error. A corrupt or truncated
// checkpoint fails with an error wrapping ErrCorruptCheckpoint; the
// trace is never touched in that case.
func ResumeFrom(r io.Reader) StreamOption {
	return func(c *streamConfig) { c.resume = r }
}

// WithContext cancels the run when ctx does: the streaming loop stops
// at the next batch boundary, sharded workers and the pipelined
// decoder drain and exit (no goroutine leaks), and the run returns the
// partial StreamResult alongside ctx.Err(). The partial result covers
// exactly the events processed before cancellation.
func WithContext(ctx context.Context) StreamOption {
	return func(c *streamConfig) { c.ctx = ctx }
}

// asCheckpointable requires src (the fully wrapped source chain) to
// support checkpointing.
func asCheckpointable(src trace.EventSource) (trace.CheckpointableSource, error) {
	cs, ok := src.(trace.CheckpointableSource)
	if !ok {
		return nil, fmt.Errorf("treeclock: source %T does not support checkpointing", src)
	}
	return cs, nil
}

// writeCheckpoint assembles one complete checkpoint into w.
func writeCheckpoint(w io.Writer, name string, cfg *streamConfig, shards int, events uint64, src trace.CheckpointableSource, engines []streamEngine) error {
	e := ckpt.NewEnc(w)
	e.Header()
	e.Begin("config")
	e.String(name)
	e.Bool(cfg.flatWeak)
	e.Bool(cfg.analysis)
	e.Bool(cfg.validate)
	e.Int(shards)
	e.U64(events)
	e.Bool(cfg.slotReclaim)
	e.Int(cfg.summaryCap)
	e.Int(cfg.internCap)
	e.End()
	if err := e.Err(); err != nil {
		return err
	}
	if err := src.SnapshotSource(e); err != nil {
		return err
	}
	for _, eng := range engines {
		if err := eng.Snapshot(w); err != nil {
			return err
		}
	}
	e.Begin("end")
	e.End()
	return e.Err()
}

// emitCheckpoint writes one checkpoint through the configured sink.
// The bytes are assembled in scratch first so the sink only ever sees
// a complete checkpoint.
func emitCheckpoint(cfg *streamConfig, scratch *bytes.Buffer, name string, shards int, events uint64, src trace.CheckpointableSource, engines []streamEngine) error {
	scratch.Reset()
	if err := writeCheckpoint(scratch, name, cfg, shards, events, src, engines); err != nil {
		return fmt.Errorf("treeclock: writing checkpoint at %d events: %w", events, err)
	}
	wc, err := cfg.ckptSink.Create(events)
	if err != nil {
		return fmt.Errorf("treeclock: creating checkpoint at %d events: %w", events, err)
	}
	if _, err := wc.Write(scratch.Bytes()); err != nil {
		wc.Close()
		return fmt.Errorf("treeclock: writing checkpoint at %d events: %w", events, err)
	}
	if err := wc.Close(); err != nil {
		return fmt.Errorf("treeclock: committing checkpoint at %d events: %w", events, err)
	}
	return nil
}

// restoreCheckpoint consumes a whole checkpoint from cfg.resume,
// validating the configuration, fast-forwarding the source and loading
// every engine replica. On error the run must be discarded.
func restoreCheckpoint(cfg *streamConfig, name string, shards int, src trace.CheckpointableSource, engines []streamEngine) (events uint64, err error) {
	d := ckpt.NewDec(cfg.resume)
	d.Header()
	d.Begin("config")
	ckName := d.String()
	ckFlat := d.Bool()
	ckAnalysis := d.Bool()
	ckValidate := d.Bool()
	ckShards := d.Int()
	events = d.U64()
	ckReclaim := d.Bool()
	ckSumCap := d.Int()
	ckInternCap := d.Int()
	d.End()
	if err := d.Err(); err != nil {
		return 0, err
	}
	if ckName != name || ckFlat != cfg.flatWeak || ckAnalysis != cfg.analysis || ckValidate != cfg.validate || ckShards != shards {
		return 0, fmt.Errorf("treeclock: checkpoint was written by engine %q (flat-weak %v, analysis %v, validate %v, %d workers); this run is %q (flat-weak %v, analysis %v, validate %v, %d workers)",
			ckName, ckFlat, ckAnalysis, ckValidate, ckShards,
			name, cfg.flatWeak, cfg.analysis, cfg.validate, shards)
	}
	if ckReclaim != cfg.slotReclaim || ckSumCap != cfg.summaryCap || ckInternCap != cfg.internCap {
		return 0, fmt.Errorf("treeclock: checkpoint was written with slot-reclaim %v, summary cap %d, intern cap %d; this run has slot-reclaim %v, summary cap %d, intern cap %d",
			ckReclaim, ckSumCap, ckInternCap, cfg.slotReclaim, cfg.summaryCap, cfg.internCap)
	}
	if err := src.RestoreSource(d); err != nil {
		return 0, err
	}
	// Observer wrappers (progress reporting) contribute no checkpoint
	// state; re-seed their counters from the restored position so
	// callbacks continue the interrupted run's numbering.
	if ps, ok := src.(interface{ StartAt(uint64) }); ok {
		ps.StartAt(events)
	}
	for _, eng := range engines {
		if err := eng.Restore(cfg.resume); err != nil {
			return 0, err
		}
	}
	d.Begin("end")
	d.End()
	if err := d.Err(); err != nil {
		return 0, err
	}
	for i, eng := range engines {
		if eng.Events() != events {
			return 0, fmt.Errorf("treeclock: checkpoint replica %d restored at %d events but the checkpoint covers %d: %w",
				i, eng.Events(), events, ckpt.ErrCorrupt)
		}
	}
	return events, nil
}
