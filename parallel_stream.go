package treeclock

// Sharded (parallel) streaming analysis: RunStreamParallel is RunStream
// with the per-variable analysis partitioned across worker replicas.
// See internal/parallel for the transport and the design notes, and
// the package documentation's Architecture section for why the merged
// result is byte-identical to a sequential run.

import (
	"fmt"
	"io"
	"runtime"

	"treeclock/internal/trace"
)

// RunStreamParallel is RunStream with the analysis sharded across
// workers: variables partition across N full engine replicas by stable
// hash, every replica processes the complete event stream in trace
// order (sequenced by a coordinator through per-worker SPSC ring
// queues, so clock evolution is identical in every replica), and each
// variable's race checks run only on its owning worker. The merged
// result — counts, samples in trace order, timestamps, metadata — is
// byte-identical to the sequential run's; StreamResult.Mem sums the
// replicas' retained state (and so grows with the worker count:
// sharding trades replicated clock scaffolding for parallel analysis).
//
// The worker count comes from WithWorkers, defaulting to GOMAXPROCS.
// All other options mean what they mean on RunStream; StreamScalar is
// incompatible (sharding is batched by construction), and WithPipeline
// is rarely worth it here — the coordinator already decodes
// concurrently with the workers.
func RunStreamParallel(engineName string, r io.Reader, opts ...StreamOption) (*StreamResult, error) {
	cfg := parallelConfig(opts)
	var src trace.EventSource
	switch cfg.format {
	case FormatText:
		src = trace.NewScanner(r)
	case FormatBinary:
		src = trace.NewBinaryScanner(r)
	default:
		return nil, fmt.Errorf("treeclock: unknown trace format %d", cfg.format)
	}
	return runStream(engineName, src, cfg)
}

// RunStreamParallelSource is RunStreamParallel over an already-
// constructed event source, the way RunStreamSource relates to
// RunStream. Format options are ignored (the source is already
// decoded).
func RunStreamParallelSource(engineName string, src EventSource, opts ...StreamOption) (*StreamResult, error) {
	return runStream(engineName, src, parallelConfig(opts))
}

// parallelConfig resolves options for the parallel entry points:
// workers defaults to GOMAXPROCS, and the parallel path is taken even
// at one worker (so "parallel with N=1" exercises the sharded runtime
// rather than silently falling back). The driving itself is Session's
// sharded pull path — these entry points carry no driver of their own.
func parallelConfig(opts []StreamOption) streamConfig {
	cfg := streamConfig{format: FormatText, analysis: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	cfg.forceParallel = true
	return cfg
}
