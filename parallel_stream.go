package treeclock

// Sharded (parallel) streaming analysis: RunStreamParallel is RunStream
// with the per-variable analysis partitioned across worker replicas.
// See internal/parallel for the transport and the design notes, and
// the package documentation's Architecture section for why the merged
// result is byte-identical to a sequential run.

import (
	"bytes"
	"fmt"
	"io"
	"runtime"

	"treeclock/internal/analysis"
	"treeclock/internal/core"
	"treeclock/internal/engine"
	"treeclock/internal/parallel"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
)

// RunStreamParallel is RunStream with the analysis sharded across
// workers: variables partition across N full engine replicas by stable
// hash, every replica processes the complete event stream in trace
// order (sequenced by a coordinator through per-worker SPSC ring
// queues, so clock evolution is identical in every replica), and each
// variable's race checks run only on its owning worker. The merged
// result — counts, samples in trace order, timestamps, metadata — is
// byte-identical to the sequential run's; StreamResult.Mem sums the
// replicas' retained state (and so grows with the worker count:
// sharding trades replicated clock scaffolding for parallel analysis).
//
// The worker count comes from WithWorkers, defaulting to GOMAXPROCS.
// All other options mean what they mean on RunStream; StreamScalar is
// incompatible (sharding is batched by construction), and WithPipeline
// is rarely worth it here — the coordinator already decodes
// concurrently with the workers.
func RunStreamParallel(engineName string, r io.Reader, opts ...StreamOption) (*StreamResult, error) {
	cfg := parallelConfig(opts)
	var src trace.EventSource
	switch cfg.format {
	case FormatText:
		src = trace.NewScanner(r)
	case FormatBinary:
		src = trace.NewBinaryScanner(r)
	default:
		return nil, fmt.Errorf("treeclock: unknown trace format %d", cfg.format)
	}
	return runStream(engineName, src, cfg)
}

// RunStreamParallelSource is RunStreamParallel over an already-
// constructed event source, the way RunStreamSource relates to
// RunStream. Format options are ignored (the source is already
// decoded).
func RunStreamParallelSource(engineName string, src EventSource, opts ...StreamOption) (*StreamResult, error) {
	return runStream(engineName, src, parallelConfig(opts))
}

// parallelConfig resolves options for the parallel entry points:
// workers defaults to GOMAXPROCS, and the parallel path is taken even
// at one worker (so "parallel with N=1" exercises the sharded runtime
// rather than silently falling back).
func parallelConfig(opts []StreamOption) streamConfig {
	cfg := streamConfig{format: FormatText, analysis: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	cfg.forceParallel = true
	return cfg
}

// runStreamParallel shards the analysis of src across cfg.workers
// replicas and merges their results. Called from runStream once the
// configuration asks for more than one worker (or a parallel entry
// point forces the path).
func runStreamParallel(info EngineInfo, src trace.EventSource, cfg streamConfig) (*StreamResult, error) {
	n := cfg.workers
	if n < 1 {
		n = 1
	}
	if cfg.validate {
		// Validation is sequential by nature (lock discipline follows
		// trace order) and runs on the coordinator side, exactly once.
		src = trace.NewValidator(src)
	}
	if cfg.pipeline > 0 {
		p := trace.NewPipeline(src, cfg.pipeline, trace.DefaultBatchSize)
		defer p.Close()
		src = p
	}
	if cfg.progressFn != nil {
		src = wrapProgress(src, &cfg)
	}

	// One full replica per worker, each owning one variable shard. A
	// shared WorkStats sink would race across workers, so each replica
	// counts into its own and the totals are summed at the end.
	engines := make([]streamEngine, n)
	replicas := make([]parallel.Replica, n)
	var sinks []WorkStats
	if cfg.stats != nil {
		sinks = make([]WorkStats, n)
	}
	for w := 0; w < n; w++ {
		var sink *WorkStats
		if cfg.stats != nil {
			sink = &sinks[w]
		}
		owns := parallel.Owns(w, n)
		if !cfg.analysis {
			// Without analysis there is nothing to shard; the replicas
			// would all do identical work. Keep the contract (the path
			// still runs) but let every worker skip the gating closure.
			owns = nil
		}
		var err error
		if info.Clock == "tree" {
			engines[w], err = newStreamEngine[*core.TreeClock](info.Order, core.Factory(sink), &cfg, owns)
		} else {
			engines[w], err = newStreamEngine[*vc.VectorClock](info.Order, vc.Factory(sink), &cfg, owns)
		}
		if err != nil {
			return nil, err
		}
		replicas[w] = engines[w]
	}

	// Checkpoint/resume: every replica's state goes into (and comes
	// back from) the checkpoint, in worker order, and the coordinator
	// takes snapshots at barriers where all workers stand at the same
	// trace position.
	var (
		startAt uint64
		cs      trace.CheckpointableSource
	)
	if cfg.ckptSink != nil || cfg.resume != nil {
		var err error
		cs, err = asCheckpointable(src)
		if err != nil {
			return nil, err
		}
		if !engines[0].Checkpointable() {
			return nil, fmt.Errorf("treeclock: engine %q does not support checkpointing", info.Name)
		}
		if cfg.resume != nil {
			if startAt, err = restoreCheckpoint(&cfg, info.Name, n, cs, engines); err != nil {
				return nil, err
			}
		}
	}
	popts := parallel.Options{Ctx: cfg.ctx, StartAt: startAt}
	if cfg.ckptSink != nil {
		var scratch bytes.Buffer
		popts.CheckpointEvery = cfg.ckptEvery
		popts.Checkpoint = func(events uint64) error {
			return emitCheckpoint(&cfg, &scratch, info.Name, n, events, cs, engines)
		}
	}

	events, err := parallel.Run(src, replicas, popts)
	if err == nil {
		for w, e := range engines {
			if e.Events() != events {
				return nil, fmt.Errorf("treeclock: internal error: worker %d processed %d of %d events", w, e.Events(), events)
			}
		}
	}

	// Replica clock evolution is identical everywhere, so worker 0
	// speaks for timestamps and metadata; the sharded analysis state
	// merges across all workers.
	sum, samples, ts := engines[0].Finish()
	if cfg.analysis {
		accs := make([]*analysis.Accumulator, n)
		for w, e := range engines {
			accs[w] = e.Acc()
		}
		sum, samples = analysis.MergeAccumulators(accs)
	}
	res := &StreamResult{
		Engine:     info.Name,
		Meta:       engines[0].Meta(),
		Events:     events,
		Summary:    sum,
		Samples:    samples,
		Timestamps: ts,
	}
	var mems []engine.MemStats
	for _, e := range engines {
		if ms, ok := e.Mem(); ok {
			mems = append(mems, ms)
		}
	}
	if len(mems) > 0 {
		ms := engine.MergeMemStats(mems)
		res.Mem = &ms
	}
	if cfg.stats != nil {
		for i := range sinks {
			cfg.stats.Add(sinks[i])
		}
	}
	if err != nil {
		// The workers have drained every batch dispatched before the
		// failure (cancellation, a mid-stream decode error, a checkpoint
		// write error), so the partial result is internally consistent:
		// counts, merged MemStats and metadata all describe exactly the
		// events delivered.
		return res, err
	}
	return res, nil
}
